//! Campaign results: per-scenario outcomes and aggregate views.

use crate::app::{AppError, ExperimentOutcome, TrajectoryPoint};
use crate::campaign::spec::ScenarioSpec;
use crate::multi::MultiOt2Outcome;
use sdl_datapub::AcdcPortal;
use sdl_desim::SimDuration;
use std::fmt::Write as _;
use std::sync::Arc;

/// What one scenario produced.
#[derive(Debug)]
pub enum ScenarioOutcome {
    /// A single-loop experiment's full outcome.
    Single(Box<ExperimentOutcome>),
    /// A multi-OT2 run's outcome.
    MultiOt2(MultiOt2Outcome),
}

impl ScenarioOutcome {
    /// Best score achieved.
    pub fn best_score(&self) -> f64 {
        match self {
            ScenarioOutcome::Single(o) => o.best_score,
            ScenarioOutcome::MultiOt2(o) => o.best_score,
        }
    }

    /// Virtual-clock duration.
    pub fn duration(&self) -> SimDuration {
        match self {
            ScenarioOutcome::Single(o) => o.duration,
            ScenarioOutcome::MultiOt2(o) => o.duration,
        }
    }

    /// Samples measured.
    pub fn samples_measured(&self) -> u32 {
        match self {
            ScenarioOutcome::Single(o) => o.samples_measured,
            ScenarioOutcome::MultiOt2(o) => o.samples_measured,
        }
    }

    /// Plates consumed.
    pub fn plates_used(&self) -> u32 {
        match self {
            ScenarioOutcome::Single(o) => o.plates_used,
            ScenarioOutcome::MultiOt2(o) => o.plates_used,
        }
    }

    /// Robotic commands completed.
    pub fn robotic_commands(&self) -> u64 {
        match self {
            ScenarioOutcome::Single(o) => o.counters.robotic_completed,
            ScenarioOutcome::MultiOt2(o) => o.robotic_commands,
        }
    }

    /// Degenerate-surrogate fallbacks the scenario's solver recorded.
    pub fn solver_fallbacks(&self) -> u64 {
        match self {
            ScenarioOutcome::Single(o) => o.solver_fallbacks,
            ScenarioOutcome::MultiOt2(o) => o.solver_fallbacks,
        }
    }

    /// The ΔE trajectory (empty for multi-OT2 runs, which share one
    /// unordered history across handlers).
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        match self {
            ScenarioOutcome::Single(o) => &o.trajectory,
            ScenarioOutcome::MultiOt2(_) => &[],
        }
    }

    /// The single-loop outcome, panicking for multi-OT2 scenarios.
    pub fn as_single(&self) -> &ExperimentOutcome {
        match self {
            ScenarioOutcome::Single(o) => o,
            ScenarioOutcome::MultiOt2(_) => panic!("scenario ran in multi-OT2 mode"),
        }
    }

    /// The multi-OT2 outcome, panicking for single-loop scenarios.
    pub fn as_multi(&self) -> &MultiOt2Outcome {
        match self {
            ScenarioOutcome::MultiOt2(o) => o,
            ScenarioOutcome::Single(_) => panic!("scenario ran in single-loop mode"),
        }
    }
}

/// One scenario's spec plus what happened when it ran.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The scenario as submitted.
    pub spec: ScenarioSpec,
    /// Position in the campaign's input order.
    pub index: usize,
    /// The outcome (an `Err` records the failure without sinking the
    /// campaign's other scenarios).
    pub outcome: Result<ScenarioOutcome, AppError>,
}

impl ScenarioResult {
    /// The scenario's label.
    pub fn label(&self) -> &str {
        &self.spec.label
    }

    /// The outcome, panicking with the label on failure.
    pub fn expect_outcome(&self) -> &ScenarioOutcome {
        match &self.outcome {
            Ok(o) => o,
            Err(e) => panic!("scenario '{}' failed: {e}", self.spec.label),
        }
    }

    /// The single-loop outcome, panicking with the label on failure.
    pub fn expect_single(&self) -> &ExperimentOutcome {
        self.expect_outcome().as_single()
    }
}

/// Everything a finished campaign reports.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-scenario results, in input order.
    pub results: Vec<ScenarioResult>,
    /// The portal every scenario summary streamed into.
    pub portal: Arc<AcdcPortal>,
    /// Worker threads the campaign ran on (informational; results do not
    /// depend on it).
    pub threads: usize,
}

impl CampaignReport {
    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when the campaign had no scenarios.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Iterate over successful outcomes with their labels, panicking on the
    /// first failed scenario.
    pub fn expect_all(&self) -> impl Iterator<Item = (&str, &ScenarioOutcome)> {
        self.results.iter().map(|r| (r.spec.label.as_str(), r.expect_outcome()))
    }

    /// Final best scores of every scenario whose label starts with `prefix`
    /// (failed scenarios are skipped).
    pub fn best_scores_with_prefix(&self, prefix: &str) -> Vec<f64> {
        self.results
            .iter()
            .filter(|r| r.spec.label.starts_with(prefix))
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(ScenarioOutcome::best_score)
            .collect()
    }

    /// The result with exactly this label.
    pub fn by_label(&self, label: &str) -> Option<&ScenarioResult> {
        self.results.iter().find(|r| r.spec.label == label)
    }

    /// Total degenerate-surrogate fallbacks across all completed scenarios
    /// — nonzero means some proposals silently degraded to random search.
    pub fn solver_fallbacks(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(ScenarioOutcome::solver_fallbacks)
            .sum()
    }

    /// Decompose into `(label, outcome)` pairs in input order, adapting the
    /// pre-campaign `run_sweep` return shape.
    pub fn into_label_outcomes(self) -> Vec<(String, Result<ExperimentOutcome, AppError>)> {
        self.results
            .into_iter()
            .map(|r| {
                let out = r.outcome.map(|o| match o {
                    ScenarioOutcome::Single(e) => *e,
                    ScenarioOutcome::MultiOt2(_) => {
                        panic!("scenario '{}' is multi-OT2; use the report API", r.spec.label)
                    }
                });
                (r.spec.label, out)
            })
            .collect()
    }

    /// Render a fixed-width summary table of every scenario.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>10} {:>8} {:>7}",
            "scenario", "duration", "best", "samples", "plates"
        );
        let _ = writeln!(out, "{:-<70}", "");
        for r in &self.results {
            match &r.outcome {
                Ok(o) => {
                    let _ = writeln!(
                        out,
                        "{:<28} {:>12} {:>10.2} {:>8} {:>7}",
                        r.spec.label,
                        o.duration().to_string(),
                        o.best_score(),
                        o.samples_measured(),
                        o.plates_used()
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{:<28} FAILED: {e}", r.spec.label);
                }
            }
        }
        out
    }

    /// A canonical fingerprint of every result: identical fingerprints mean
    /// bit-identical campaign outcomes (scores are rendered via their IEEE
    /// bit patterns, so even sub-ULP drift is caught). Used by the
    /// determinism suite to compare runs at different thread counts.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let _ = write!(out, "{}|{}|", r.index, r.spec.label);
            match &r.outcome {
                Ok(o) => {
                    let _ = write!(
                        out,
                        "best={:016x} dur={} n={} plates={} cmds={}",
                        o.best_score().to_bits(),
                        o.duration().as_micros(),
                        o.samples_measured(),
                        o.plates_used(),
                        o.robotic_commands()
                    );
                    for p in o.trajectory() {
                        let _ = write!(
                            out,
                            " {}:{:016x}:{:016x}",
                            p.sample,
                            p.score.to_bits(),
                            p.best.to_bits()
                        );
                    }
                    if let ScenarioOutcome::MultiOt2(m) = o {
                        let _ = write!(out, " per={:?}", m.per_handler_samples);
                    }
                }
                Err(e) => {
                    let _ = write!(out, "error={e}");
                }
            }
            out.push('\n');
        }
        out
    }
}
