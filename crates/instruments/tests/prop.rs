//! Property tests: labware conservation and instrument invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdl_color::{DyeSet, MixKind};
use sdl_instruments::{
    ActionArgs, Barty, Instrument, Microplate, Ot2, ProtocolSpec, ReservoirBank, TimingModel,
    WellDispense, WellIndex, World,
};

fn arb_volumes() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..40.0f64, 4)
}

proptest! {
    /// Volume is conserved: whatever leaves the reservoirs lands in wells.
    #[test]
    fn ot2_conserves_volume(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_volumes(), 1..6),
            1..4,
        )
    ) {
        let dyes = DyeSet::cmyk();
        let mut world = World::new(dyes.clone(), MixKind::BeerLambert);
        world.add_slot("ot2.deck");
        world.add_bank("ot2", ReservoirBank::full(&dyes, 100_000.0));
        let plate_id = world.spawn_plate("ot2.deck", Microplate::standard96()).unwrap();
        let mut ot2 = Ot2::new("ot2", "ot2.deck", "ot2", 960);
        let timing = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(1);

        let mut next_well = 0usize;
        let mut dispensed_total = 0.0;
        for batch in batches {
            let dispenses: Vec<WellDispense> = batch
                .iter()
                .map(|v| {
                    let w = WellIndex::from_flat(next_well, 12);
                    next_well += 1;
                    WellDispense { well: w, volumes_ul: v.clone() }
                })
                .collect();
            if next_well > 96 {
                break;
            }
            let demand: f64 = dispenses.iter().map(|d| d.volumes_ul.iter().sum::<f64>()).sum();
            let args = ActionArgs::none()
                .with_protocol(ProtocolSpec { name: "p".into(), dispenses });
            ot2.execute("run_protocol", &args, &mut world, &timing, &mut rng).unwrap();
            dispensed_total += demand;
        }

        let bank_used: f64 = world
            .bank("ot2")
            .unwrap()
            .reservoirs
            .iter()
            .map(|r| r.capacity_ul - r.volume_ul)
            .sum();
        let in_wells: f64 = world
            .plate(plate_id)
            .unwrap()
            .iter()
            .map(|(_, w)| w.total_ul())
            .sum();
        prop_assert!((bank_used - dispensed_total).abs() < 1e-6);
        prop_assert!((in_wells - dispensed_total).abs() < 1e-6);
    }

    /// barty fill always restores a full bank, whatever state it was in.
    #[test]
    fn barty_fill_restores_capacity(levels in proptest::collection::vec(0.0..4000.0f64, 4)) {
        let dyes = DyeSet::cmyk();
        let mut world = World::new(dyes.clone(), MixKind::BeerLambert);
        world.add_bank("ot2", ReservoirBank::full(&dyes, 4000.0));
        for (r, lvl) in world.bank_mut("ot2").unwrap().reservoirs.iter_mut().zip(&levels) {
            r.volume_ul = *lvl;
        }
        let mut barty = Barty::new("barty", "ot2", vec![1_000_000.0; 4]);
        let mut rng = StdRng::seed_from_u64(2);
        barty
            .execute("fill_colors", &ActionArgs::none(), &mut world, &TimingModel::default(), &mut rng)
            .unwrap();
        for r in &world.bank("ot2").unwrap().reservoirs {
            prop_assert_eq!(r.volume_ul, r.capacity_ul);
        }
        // Stock decreased by exactly the poured volume.
        let poured: f64 = levels.iter().map(|l| 4000.0 - l).sum();
        let stock_used: f64 = barty.stock_ul().iter().map(|s| 1_000_000.0 - s).sum();
        prop_assert!((stock_used - poured).abs() < 1e-6);
    }

    /// Well labels roundtrip for every plate position.
    #[test]
    fn well_index_label_roundtrip(row in 0usize..8, col in 0usize..12) {
        let idx = WellIndex::new(row, col);
        prop_assert_eq!(WellIndex::parse(&idx.to_string()), Some(idx));
    }

    /// Plate dispensing never exceeds capacity and tracks usage exactly.
    #[test]
    fn plate_usage_accounting(wells in proptest::collection::vec((0usize..8, 0usize..12), 1..40)) {
        let mut plate = Microplate::standard96();
        let mut used = std::collections::HashSet::new();
        for (row, col) in wells {
            let idx = WellIndex::new(row, col);
            let result = plate.dispense(idx, &[1.0, 2.0, 3.0, 4.0]);
            if used.insert(idx) {
                prop_assert!(result.is_ok());
            } else {
                prop_assert!(result.is_err(), "double dispense into {idx} must fail");
            }
        }
        prop_assert_eq!(plate.used_wells(), used.len());
        prop_assert_eq!(plate.free_wells(), 96 - used.len());
    }

    /// The pf400 cannot teleport plates: a random walk of transfers keeps
    /// exactly one plate in the system, always at a valid slot.
    #[test]
    fn pf400_custody_is_conserved(moves in proptest::collection::vec(0usize..3, 1..20)) {
        let slots = ["sciclops.exchange", "camera.nest", "ot2.deck"];
        let dyes = DyeSet::cmyk();
        let mut world = World::new(dyes, MixKind::BeerLambert);
        for s in slots {
            world.add_slot(s);
        }
        let mut arm = sdl_instruments::Pf400::new("pf400");
        let timing = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        world.spawn_plate(slots[0], Microplate::standard96()).unwrap();
        let mut at = 0usize;
        for target in moves {
            let args = ActionArgs::none().with("source", slots[at]).with("target", slots[target]);
            let result = arm.execute("transfer", &args, &mut world, &timing, &mut rng);
            if target == at {
                prop_assert!(result.is_err());
            } else {
                prop_assert!(result.is_ok());
                at = target;
            }
            // Exactly one slot is occupied.
            let occupied = slots
                .iter()
                .filter(|s| world.plate_at(s).unwrap().is_some())
                .count();
            prop_assert_eq!(occupied, 1);
            prop_assert!(world.plate_at(slots[at]).unwrap().is_some());
        }
    }
}
