//! `camera` — the Logitech webcam with ring light: "used to capture images
//! of the microplate … a microplate mount designed to allow the pf400 to
//! place the microplate in the same location each time" (paper §2.2).
//!
//! The simulator computes each well's true color from the shared world
//! state, then renders a full frame through `sdl-vision` — vignette, sensor
//! noise, pose jitter and all — so the downstream image-processing pipeline
//! is exercised exactly as on the physical rig.

use crate::module::{
    ActionArgs, ActionData, ActionOutcome, Instrument, InstrumentError, ModuleKind, ModuleState,
};
use crate::timing::TimingModel;
use crate::world::World;
use rand::rngs::StdRng;
use sdl_vision::{render_into, CameraGeometry, DriftSpec, ImageRgb8, Lighting, PlateScene, Pose};
use std::sync::Arc;

/// Camera simulator.
#[derive(Debug, Clone)]
pub struct CameraSim {
    name: String,
    state: ModuleState,
    /// The imaging nest a plate must occupy.
    nest_slot: String,
    /// Lighting model for rendered frames.
    pub lighting: Lighting,
    /// Geometry (resolution, magnification) and fidelity profile of the
    /// frames this camera captures.
    pub camera: CameraGeometry,
    /// Maximum per-frame translation jitter, px.
    pub max_shift_px: f64,
    /// Maximum per-frame rotation jitter, degrees.
    pub max_rot_deg: f64,
    /// Which fiducial is printed next to the mount.
    pub marker_id: usize,
    /// Deterministic illumination drift applied per captured frame (the
    /// stress-scenario axis); `None` = stable illuminant. The per-frame
    /// gains are a pure function of `(drift, drift_seed, frame index)` and
    /// consume no RNG, so enabling drift perturbs nothing else.
    pub drift: Option<DriftSpec>,
    /// Seed of the drift random walk.
    pub drift_seed: u64,
    frames_captured: u64,
    /// The last frame handed out. Once every downstream consumer has
    /// dropped its handle (the normal cadence: one frame processed per
    /// batch), the pixel buffer is reclaimed and re-rendered in place, so
    /// steady-state capture allocates nothing.
    last_frame: Option<Arc<ImageRgb8>>,
}

impl CameraSim {
    /// A camera watching `nest_slot`.
    pub fn new(name: impl Into<String>, nest_slot: impl Into<String>) -> CameraSim {
        CameraSim {
            name: name.into(),
            state: ModuleState::Idle,
            nest_slot: nest_slot.into(),
            lighting: Lighting::default(),
            camera: CameraGeometry::default(),
            max_shift_px: 5.0,
            max_rot_deg: 1.0,
            marker_id: 0,
            drift: None,
            drift_seed: 0,
            frames_captured: 0,
            last_frame: None,
        }
    }

    /// Frames captured so far.
    pub fn frames_captured(&self) -> u64 {
        self.frames_captured
    }

    /// The imaging nest name.
    pub fn nest_slot(&self) -> &str {
        &self.nest_slot
    }
}

impl Instrument for CameraSim {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Camera
    }

    fn state(&self) -> ModuleState {
        self.state
    }

    fn reset(&mut self) {
        self.state = ModuleState::Idle;
    }

    fn mark_error(&mut self) {
        self.state = ModuleState::Error;
    }

    fn actions(&self) -> &'static [&'static str] {
        &["take_picture"]
    }

    fn execute(
        &mut self,
        action: &str,
        _args: &ActionArgs,
        world: &mut World,
        timing: &TimingModel,
        rng: &mut StdRng,
    ) -> Result<ActionOutcome, InstrumentError> {
        if self.state == ModuleState::Error {
            return Err(InstrumentError::NeedsReset);
        }
        match action {
            "take_picture" => {
                let plate_id = world.plate_at(&self.nest_slot)?.ok_or_else(|| {
                    InstrumentError::World(crate::world::WorldError::SlotEmpty(
                        self.nest_slot.clone(),
                    ))
                })?;

                let mut scene = PlateScene::empty_plate();
                scene.marker_id = self.marker_id;
                scene.lighting = self.lighting.clone();
                if let Some(drift) = self.drift {
                    scene.lighting.channel_gain =
                        drift.channel_gain(self.drift_seed, self.frames_captured);
                }
                scene.camera = self.camera.clone();
                scene.pose = Pose::jittered(rng, self.max_shift_px, self.max_rot_deg);

                let plate = world.plate(plate_id)?.clone();
                for (idx, well) in plate.iter() {
                    if well.is_empty() {
                        continue;
                    }
                    if idx.row < scene.plate.rows && idx.col < scene.plate.cols {
                        if let Some(color) = world.well_color(plate_id, idx)? {
                            scene.set_well(idx.row, idx.col, color);
                        }
                    }
                }
                // Reclaim the previous frame's buffer when we hold the last
                // handle; otherwise render into a fresh one.
                let mut buf = match self.last_frame.take().map(Arc::try_unwrap) {
                    Some(Ok(img)) => img,
                    _ => ImageRgb8::new(
                        scene.camera.width_px,
                        scene.camera.height_px,
                        Default::default(),
                    ),
                };
                render_into(&scene, rng, &mut buf);
                let frame = Arc::new(buf);
                self.last_frame = Some(Arc::clone(&frame));
                self.frames_captured += 1;
                Ok(ActionOutcome {
                    duration: timing.camera_capture.sample(rng),
                    data: ActionData::Image(frame),
                })
            }
            other => Err(InstrumentError::UnknownAction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labware::{Microplate, WellIndex};
    use rand::SeedableRng;
    use sdl_color::{DyeSet, MixKind};
    use sdl_vision::Detector;

    fn setup() -> (CameraSim, World, TimingModel, StdRng) {
        let mut world = World::new(DyeSet::cmyk(), MixKind::BeerLambert);
        world.add_slot("camera.nest");
        (
            CameraSim::new("camera", "camera.nest"),
            world,
            TimingModel::default(),
            StdRng::seed_from_u64(7),
        )
    }

    #[test]
    fn empty_nest_is_an_error() {
        let (mut cam, mut world, timing, mut rng) = setup();
        let err = cam.execute("take_picture", &ActionArgs::none(), &mut world, &timing, &mut rng);
        assert!(matches!(err, Err(InstrumentError::World(_))));
        assert_eq!(cam.frames_captured(), 0);
    }

    #[test]
    fn captured_frame_contains_dispensed_well() {
        let (mut cam, mut world, timing, mut rng) = setup();
        let id = world.spawn_plate("camera.nest", Microplate::standard96()).unwrap();
        // Strong black sample in A1.
        world
            .plate_mut(id)
            .unwrap()
            .dispense(WellIndex::new(0, 0), &[0.0, 0.0, 0.0, 35.0])
            .unwrap();
        let out = cam
            .execute("take_picture", &ActionArgs::none(), &mut world, &timing, &mut rng)
            .unwrap();
        assert_eq!(cam.frames_captured(), 1);
        let ActionData::Image(frame) = out.data else { panic!("expected an image") };
        // Run the real detection pipeline on the simulated frame.
        let reading = Detector::default().detect(&frame).unwrap();
        // 35 µL of black stock is calibrated to read near the paper's
        // mid-gray target; the camera should measure within ~15 RGB units of
        // the Beer–Lambert prediction.
        let truth = world.well_color(id, WellIndex::new(0, 0)).unwrap().unwrap().to_srgb();
        let a1 = reading.well(0, 0).unwrap();
        assert!(a1.color.distance(truth) < 15.0, "A1 measured {} vs truth {}", a1.color, truth);
        let b1 = reading.well(1, 0).unwrap();
        assert!(b1.color.r > 170, "empty well should stay light: {}", b1.color);
        assert!(b1.color.r as i32 - a1.color.r as i32 > 50, "sample clearly darker than empty");
    }

    #[test]
    fn recycled_frame_buffer_captures_identically() {
        // Holding every frame (no buffer reuse possible) and dropping each
        // frame (buffer recycled in place) must produce the same pixels.
        let capture_all = |hold: bool| -> Vec<Vec<u8>> {
            let (mut cam, mut world, timing, mut rng) = setup();
            world.spawn_plate("camera.nest", Microplate::standard96()).unwrap();
            let mut held = Vec::new();
            let mut bytes = Vec::new();
            for _ in 0..3 {
                let out = cam
                    .execute("take_picture", &ActionArgs::none(), &mut world, &timing, &mut rng)
                    .unwrap();
                let ActionData::Image(frame) = out.data else { panic!("expected an image") };
                bytes.push(frame.bytes().to_vec());
                if hold {
                    held.push(frame);
                }
            }
            bytes
        };
        assert_eq!(capture_all(true), capture_all(false));
    }

    #[test]
    fn drift_consumes_no_rng_and_is_reproducible() {
        let capture = |drift: Option<DriftSpec>| -> Vec<Vec<u8>> {
            let (mut cam, mut world, timing, mut rng) = setup();
            cam.drift = drift;
            cam.drift_seed = 77;
            world.spawn_plate("camera.nest", Microplate::standard96()).unwrap();
            (0..3)
                .map(|_| {
                    let out = cam
                        .execute("take_picture", &ActionArgs::none(), &mut world, &timing, &mut rng)
                        .unwrap();
                    let ActionData::Image(frame) = out.data else { panic!("expected an image") };
                    frame.bytes().to_vec()
                })
                .collect()
        };
        // A zero-amplitude drift is bit-identical to no drift at all: the
        // gains come from the counter hash, not the action RNG stream.
        let plain = capture(None);
        assert_eq!(capture(Some(DriftSpec { wb: 0.0, gain: 0.0, period: 4 })), plain);
        // Real drift changes the frames but reproduces run to run.
        let drifted = capture(Some(DriftSpec::WB_GAIN));
        assert_ne!(drifted, plain);
        assert_eq!(capture(Some(DriftSpec::WB_GAIN)), drifted);
    }

    #[test]
    fn frames_differ_between_captures() {
        let (mut cam, mut world, timing, mut rng) = setup();
        world.spawn_plate("camera.nest", Microplate::standard96()).unwrap();
        let a = cam
            .execute("take_picture", &ActionArgs::none(), &mut world, &timing, &mut rng)
            .unwrap();
        let b = cam
            .execute("take_picture", &ActionArgs::none(), &mut world, &timing, &mut rng)
            .unwrap();
        assert_ne!(a.data, b.data, "noise and pose jitter vary per frame");
    }
}
