//! `pf400` — the rail-mounted manipulator arm: "the central transportation
//! unit within the workcell. Its core function is to shuttle microplates
//! between different modules" (paper §2.2).

use crate::module::{
    ActionArgs, ActionOutcome, Instrument, InstrumentError, ModuleKind, ModuleState,
};
use crate::timing::TimingModel;
use crate::world::World;
use rand::rngs::StdRng;

/// Manipulator simulator.
#[derive(Debug, Clone)]
pub struct Pf400 {
    name: String,
    state: ModuleState,
    /// Nest the gripper is currently parked at (after the last transfer).
    position: Option<String>,
    transfers_completed: u64,
}

impl Pf400 {
    /// A new arm, parked at no particular nest.
    pub fn new(name: impl Into<String>) -> Pf400 {
        Pf400 {
            name: name.into(),
            state: ModuleState::Idle,
            position: None,
            transfers_completed: 0,
        }
    }

    /// Where the arm last placed a plate.
    pub fn position(&self) -> Option<&str> {
        self.position.as_deref()
    }

    /// Number of completed transfers (feeds the pick-and-place accounting
    /// the paper reports: "the pf400 had to pick and place the microplate
    /// precisely twice per time period").
    pub fn transfers_completed(&self) -> u64 {
        self.transfers_completed
    }
}

impl Instrument for Pf400 {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::Manipulator
    }

    fn state(&self) -> ModuleState {
        self.state
    }

    fn reset(&mut self) {
        self.state = ModuleState::Idle;
    }

    fn mark_error(&mut self) {
        self.state = ModuleState::Error;
    }

    fn actions(&self) -> &'static [&'static str] {
        &["transfer"]
    }

    fn execute(
        &mut self,
        action: &str,
        args: &ActionArgs,
        world: &mut World,
        timing: &TimingModel,
        rng: &mut StdRng,
    ) -> Result<ActionOutcome, InstrumentError> {
        if self.state == ModuleState::Error {
            return Err(InstrumentError::NeedsReset);
        }
        match action {
            "transfer" => {
                let source = args.req("source")?;
                let target = args.req("target")?;
                if source == target {
                    return Err(InstrumentError::BadArgs("source equals target".into()));
                }
                world.move_plate(source, target)?;
                self.position = Some(target.to_string());
                self.transfers_completed += 1;
                Ok(ActionOutcome::lasting(timing.pf400_transfer.sample(rng)))
            }
            other => Err(InstrumentError::UnknownAction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labware::Microplate;
    use rand::SeedableRng;
    use sdl_color::{DyeSet, MixKind};

    fn setup() -> (Pf400, World, TimingModel, StdRng) {
        let mut world = World::new(DyeSet::cmyk(), MixKind::BeerLambert);
        for s in ["sciclops.exchange", "camera.nest", "ot2.deck"] {
            world.add_slot(s);
        }
        world.spawn_plate("sciclops.exchange", Microplate::standard96()).unwrap();
        (Pf400::new("pf400"), world, TimingModel::default(), StdRng::seed_from_u64(2))
    }

    fn args(from: &str, to: &str) -> ActionArgs {
        ActionArgs::none().with("source", from).with("target", to)
    }

    #[test]
    fn transfer_moves_plate_and_tracks_position() {
        let (mut arm, mut world, timing, mut rng) = setup();
        arm.execute(
            "transfer",
            &args("sciclops.exchange", "camera.nest"),
            &mut world,
            &timing,
            &mut rng,
        )
        .unwrap();
        assert!(world.plate_at("camera.nest").unwrap().is_some());
        assert_eq!(arm.position(), Some("camera.nest"));
        assert_eq!(arm.transfers_completed(), 1);
        arm.execute("transfer", &args("camera.nest", "ot2.deck"), &mut world, &timing, &mut rng)
            .unwrap();
        assert_eq!(arm.transfers_completed(), 2);
    }

    #[test]
    fn transfer_validates_slots() {
        let (mut arm, mut world, timing, mut rng) = setup();
        assert!(matches!(
            arm.execute(
                "transfer",
                &args("camera.nest", "ot2.deck"),
                &mut world,
                &timing,
                &mut rng
            ),
            Err(InstrumentError::World(_))
        ));
        assert!(matches!(
            arm.execute("transfer", &args("ot2.deck", "ot2.deck"), &mut world, &timing, &mut rng),
            Err(InstrumentError::BadArgs(_))
        ));
        assert!(matches!(
            arm.execute("transfer", &ActionArgs::none(), &mut world, &timing, &mut rng),
            Err(InstrumentError::BadArgs(_))
        ));
        assert_eq!(arm.transfers_completed(), 0);
    }

    #[test]
    fn duration_close_to_calibrated_mean() {
        let (mut arm, mut world, timing, mut rng) = setup();
        let out = arm
            .execute(
                "transfer",
                &args("sciclops.exchange", "ot2.deck"),
                &mut world,
                &timing,
                &mut rng,
            )
            .unwrap();
        let secs = out.duration.as_secs_f64();
        assert!((secs - 34.0).abs() < 1.0, "transfer took {secs}");
    }
}
