//! `sciclops` — the Hudson SciClops microplate handler: "a microplate
//! storage and staging system that can access multiple storage towers"
//! (paper §2.2).

use crate::labware::Microplate;
use crate::module::{
    ActionArgs, ActionData, ActionOutcome, Instrument, InstrumentError, ModuleKind, ModuleState,
};
use crate::timing::TimingModel;
use crate::world::World;
use rand::rngs::StdRng;

/// Plate crane simulator.
#[derive(Debug, Clone)]
pub struct SciClops {
    name: String,
    state: ModuleState,
    /// Plates remaining per storage tower.
    towers: Vec<u32>,
    /// The exchange nest where fetched plates are staged.
    exchange_slot: String,
    /// Labware template for new plates.
    plate_template: Microplate,
}

impl SciClops {
    /// A crane with the given tower inventory.
    pub fn new(
        name: impl Into<String>,
        towers: Vec<u32>,
        exchange_slot: impl Into<String>,
    ) -> SciClops {
        SciClops {
            name: name.into(),
            state: ModuleState::Idle,
            towers,
            exchange_slot: exchange_slot.into(),
            plate_template: Microplate::standard96(),
        }
    }

    /// Plates left across all towers.
    pub fn plates_remaining(&self) -> u32 {
        self.towers.iter().sum()
    }

    /// The exchange slot name.
    pub fn exchange_slot(&self) -> &str {
        &self.exchange_slot
    }
}

impl Instrument for SciClops {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::PlateCrane
    }

    fn state(&self) -> ModuleState {
        self.state
    }

    fn reset(&mut self) {
        self.state = ModuleState::Idle;
    }

    fn mark_error(&mut self) {
        self.state = ModuleState::Error;
    }

    fn actions(&self) -> &'static [&'static str] {
        &["get_plate"]
    }

    fn execute(
        &mut self,
        action: &str,
        _args: &ActionArgs,
        world: &mut World,
        timing: &TimingModel,
        rng: &mut StdRng,
    ) -> Result<ActionOutcome, InstrumentError> {
        if self.state == ModuleState::Error {
            return Err(InstrumentError::NeedsReset);
        }
        match action {
            "get_plate" => {
                let tower =
                    self.towers.iter_mut().find(|t| **t > 0).ok_or(InstrumentError::OutOfPlates)?;
                // Reserve the plate only after the destination is validated.
                let id = world.spawn_plate(&self.exchange_slot, self.plate_template.clone())?;
                *tower -= 1;
                Ok(ActionOutcome {
                    duration: timing.sciclops_get_plate.sample(rng),
                    data: ActionData::Plate(id),
                })
            }
            other => Err(InstrumentError::UnknownAction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sdl_color::{DyeSet, MixKind};

    fn setup() -> (SciClops, World, TimingModel, StdRng) {
        let mut world = World::new(DyeSet::cmyk(), MixKind::BeerLambert);
        world.add_slot("sciclops.exchange");
        (
            SciClops::new("sciclops", vec![2, 1], "sciclops.exchange"),
            world,
            TimingModel::default(),
            StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn dispenses_plates_until_empty() {
        let (mut crane, mut world, timing, mut rng) = setup();
        assert_eq!(crane.plates_remaining(), 3);
        for i in 0..3 {
            let out = crane
                .execute("get_plate", &ActionArgs::none(), &mut world, &timing, &mut rng)
                .unwrap();
            assert!(matches!(out.data, ActionData::Plate(_)), "fetch {i}");
            assert!(out.duration.as_secs_f64() > 25.0);
            // Clear the nest for the next fetch.
            world.retire_plate("sciclops.exchange").unwrap();
        }
        assert_eq!(crane.plates_remaining(), 0);
        assert_eq!(
            crane.execute("get_plate", &ActionArgs::none(), &mut world, &timing, &mut rng),
            Err(InstrumentError::OutOfPlates)
        );
    }

    #[test]
    fn occupied_exchange_fails_without_consuming_a_plate() {
        let (mut crane, mut world, timing, mut rng) = setup();
        crane.execute("get_plate", &ActionArgs::none(), &mut world, &timing, &mut rng).unwrap();
        let err = crane.execute("get_plate", &ActionArgs::none(), &mut world, &timing, &mut rng);
        assert!(matches!(err, Err(InstrumentError::World(_))));
        assert_eq!(crane.plates_remaining(), 2, "inventory untouched on failure");
    }

    #[test]
    fn error_state_blocks_commands() {
        let (mut crane, mut world, timing, mut rng) = setup();
        crane.mark_error();
        assert_eq!(crane.state(), ModuleState::Error);
        assert_eq!(
            crane.execute("get_plate", &ActionArgs::none(), &mut world, &timing, &mut rng),
            Err(InstrumentError::NeedsReset)
        );
        crane.reset();
        assert_eq!(crane.state(), ModuleState::Idle);
        assert!(crane
            .execute("get_plate", &ActionArgs::none(), &mut world, &timing, &mut rng)
            .is_ok());
    }

    #[test]
    fn unknown_action_rejected() {
        let (mut crane, mut world, timing, mut rng) = setup();
        assert_eq!(
            crane.execute("warp_plate", &ActionArgs::none(), &mut world, &timing, &mut rng),
            Err(InstrumentError::UnknownAction("warp_plate".into()))
        );
    }
}
