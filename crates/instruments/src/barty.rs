//! `barty` — the RPL-built liquid replenisher: "a robot developed in RPL
//! with four peristaltic pumps that transfer liquid from large storage
//! vessels to the reservoirs of the ot2" (paper §2.2).

use crate::module::{
    ActionArgs, ActionOutcome, Instrument, InstrumentError, ModuleKind, ModuleState,
};
use crate::timing::TimingModel;
use crate::world::World;
use rand::rngs::StdRng;
use sdl_desim::SimDuration;

/// Liquid-replenisher simulator.
#[derive(Debug, Clone)]
pub struct Barty {
    name: String,
    state: ModuleState,
    /// Which reservoir bank this robot's tubing is plumbed into.
    bank: String,
    /// Stock volume per dye, µL.
    stock_ul: Vec<f64>,
    pumped_total_ul: f64,
}

impl Barty {
    /// A replenisher with `stock_ul` µL of each dye in its storage vessels.
    pub fn new(name: impl Into<String>, bank: impl Into<String>, stock_ul: Vec<f64>) -> Barty {
        Barty {
            name: name.into(),
            state: ModuleState::Idle,
            bank: bank.into(),
            stock_ul,
            pumped_total_ul: 0.0,
        }
    }

    /// Remaining stock per dye, µL.
    pub fn stock_ul(&self) -> &[f64] {
        &self.stock_ul
    }

    /// Total volume pumped so far, µL.
    pub fn pumped_total_ul(&self) -> f64 {
        self.pumped_total_ul
    }

    /// The bank this robot feeds.
    pub fn bank_name(&self) -> &str {
        &self.bank
    }
}

impl Instrument for Barty {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::LiquidReplenisher
    }

    fn state(&self) -> ModuleState {
        self.state
    }

    fn reset(&mut self) {
        self.state = ModuleState::Idle;
    }

    fn mark_error(&mut self) {
        self.state = ModuleState::Error;
    }

    fn actions(&self) -> &'static [&'static str] {
        &["fill_colors", "drain_colors"]
    }

    fn execute(
        &mut self,
        action: &str,
        _args: &ActionArgs,
        world: &mut World,
        timing: &TimingModel,
        rng: &mut StdRng,
    ) -> Result<ActionOutcome, InstrumentError> {
        if self.state == ModuleState::Error {
            return Err(InstrumentError::NeedsReset);
        }
        match action {
            "fill_colors" => {
                // Validate stock first: refills are atomic.
                {
                    let bank = world.bank(&self.bank)?;
                    if bank.reservoirs.len() != self.stock_ul.len() {
                        return Err(InstrumentError::BadArgs(format!(
                            "barty has {} stocks, bank has {} reservoirs",
                            self.stock_ul.len(),
                            bank.reservoirs.len()
                        )));
                    }
                    for (res, stock) in bank.reservoirs.iter().zip(&self.stock_ul) {
                        let need = res.capacity_ul - res.volume_ul;
                        if need > *stock + 1e-9 {
                            return Err(InstrumentError::StockEmpty { dye: res.dye.clone() });
                        }
                    }
                }
                let mut pumped = 0.0;
                let bank = world.bank_mut(&self.bank)?;
                for (i, res) in bank.reservoirs.iter_mut().enumerate() {
                    let need = res.capacity_ul - res.volume_ul;
                    res.volume_ul = res.capacity_ul;
                    self.stock_ul[i] -= need;
                    pumped += need;
                }
                self.pumped_total_ul += pumped;
                let duration = timing.barty_overhead.sample(rng)
                    + SimDuration::from_secs_f64(pumped / timing.barty_pump_ul_per_s);
                Ok(ActionOutcome::lasting(duration))
            }
            "drain_colors" => {
                let mut drained = 0.0;
                let bank = world.bank_mut(&self.bank)?;
                for res in &mut bank.reservoirs {
                    drained += res.volume_ul;
                    res.volume_ul = 0.0;
                }
                self.pumped_total_ul += drained;
                let duration = timing.barty_overhead.sample(rng)
                    + SimDuration::from_secs_f64(drained / timing.barty_pump_ul_per_s);
                Ok(ActionOutcome::lasting(duration))
            }
            other => Err(InstrumentError::UnknownAction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ReservoirBank;
    use rand::SeedableRng;
    use sdl_color::{DyeSet, MixKind};

    fn setup(stock_each: f64) -> (Barty, World, TimingModel, StdRng) {
        let dyes = DyeSet::cmyk();
        let mut world = World::new(dyes.clone(), MixKind::BeerLambert);
        world.add_bank("ot2", ReservoirBank::full(&dyes, 4000.0));
        (
            Barty::new("barty", "ot2", vec![stock_each; 4]),
            world,
            TimingModel::default(),
            StdRng::seed_from_u64(6),
        )
    }

    #[test]
    fn fill_tops_up_and_consumes_stock() {
        let (mut barty, mut world, timing, mut rng) = setup(2_000_000.0);
        // Deplete two reservoirs.
        world.bank_mut("ot2").unwrap().reservoirs[0].volume_ul = 1000.0;
        world.bank_mut("ot2").unwrap().reservoirs[3].volume_ul = 500.0;
        let out = barty
            .execute("fill_colors", &ActionArgs::none(), &mut world, &timing, &mut rng)
            .unwrap();
        let bank = world.bank("ot2").unwrap();
        assert!(bank.reservoirs.iter().all(|r| r.volume_ul == r.capacity_ul));
        assert_eq!(barty.stock_ul()[0], 2_000_000.0 - 3000.0);
        assert_eq!(barty.stock_ul()[3], 2_000_000.0 - 3500.0);
        assert_eq!(barty.pumped_total_ul(), 6500.0);
        // 6500 µL at 500 µL/s + overhead ≈ 25 s.
        let secs = out.duration.as_secs_f64();
        assert!((secs - 25.0).abs() < 2.0, "fill took {secs}");
    }

    #[test]
    fn drain_empties_bank() {
        let (mut barty, mut world, timing, mut rng) = setup(1_000_000.0);
        barty.execute("drain_colors", &ActionArgs::none(), &mut world, &timing, &mut rng).unwrap();
        assert!(world.bank("ot2").unwrap().reservoirs.iter().all(|r| r.volume_ul == 0.0));
        assert_eq!(barty.pumped_total_ul(), 16_000.0);
    }

    #[test]
    fn empty_stock_blocks_fill_atomically() {
        let (mut barty, mut world, timing, mut rng) = setup(100.0);
        world.bank_mut("ot2").unwrap().reservoirs[2].volume_ul = 0.0;
        let before = world.bank("ot2").unwrap().clone();
        let err = barty.execute("fill_colors", &ActionArgs::none(), &mut world, &timing, &mut rng);
        assert_eq!(err, Err(InstrumentError::StockEmpty { dye: "yellow".into() }));
        assert_eq!(world.bank("ot2").unwrap(), &before, "no partial fill");
    }

    #[test]
    fn error_state_blocks() {
        let (mut barty, mut world, timing, mut rng) = setup(1_000_000.0);
        barty.mark_error();
        assert_eq!(
            barty.execute("drain_colors", &ActionArgs::none(), &mut world, &timing, &mut rng),
            Err(InstrumentError::NeedsReset)
        );
    }
}
