//! The workcell timing model.
//!
//! Action durations are calibrated so a B = 1, N = 128 color-picker run
//! reproduces Table 1 of the paper (see DESIGN.md, `sdl-instruments`):
//!
//! * per-iteration ≈ 228 s (paper: one data upload every 3 m 48 s);
//! * OT-2 protocol = fixed + per-well so that synthesis time ≈ 5 h 10 m;
//! * transfers + imaging ≈ 3 h 02 m;
//! * whole run ≈ 8 h 12 m.
//!
//! Every duration carries a small uniform jitter (real robot actions are not
//! metronomic); jitter draws come from a dedicated RNG stream so they do not
//! disturb solver reproducibility.

use rand::Rng;
use sdl_desim::SimDuration;

/// A mean duration with ± fractional uniform jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jittered {
    /// Mean duration, seconds.
    pub mean_s: f64,
    /// Fractional half-width of the uniform jitter (0.02 = ±2%).
    pub jitter: f64,
}

impl Jittered {
    /// A fixed duration with the default ±2% jitter.
    pub const fn secs(mean_s: f64) -> Jittered {
        Jittered { mean_s, jitter: 0.02 }
    }

    /// Draw one duration.
    pub fn sample(&self, rng: &mut impl Rng) -> SimDuration {
        let f = if self.jitter > 0.0 { rng.gen_range(-self.jitter..=self.jitter) } else { 0.0 };
        SimDuration::from_secs_f64(self.mean_s * (1.0 + f))
    }
}

/// All workcell action timings.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// sciclops: fetch a plate from a tower to the exchange point.
    pub sciclops_get_plate: Jittered,
    /// pf400: one plate transfer between any two nests.
    pub pf400_transfer: Jittered,
    /// OT-2: protocol overhead (homing, tip pickup, deck calibration).
    pub ot2_protocol_fixed: Jittered,
    /// OT-2: additional time per well dispensed.
    pub ot2_per_well: Jittered,
    /// Camera: stage, capture and store one frame.
    pub camera_capture: Jittered,
    /// barty: pump throughput, µL/s.
    pub barty_pump_ul_per_s: f64,
    /// barty: per-command valve/priming overhead.
    pub barty_overhead: Jittered,
    /// Economy-of-scale exponent for multi-well protocols: dispensing B
    /// wells costs `ot2_per_well × B^exponent` (multi-channel pipetting and
    /// amortized tip handling make large batches strongly sublinear; 0.78
    /// reproduces the Figure-4 x-extents, where B=64 finishes in ~1 hour
    /// while B=1 takes over eight).
    pub ot2_batch_exponent: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            sciclops_get_plate: Jittered::secs(30.0),
            pf400_transfer: Jittered::secs(34.0),
            ot2_protocol_fixed: Jittered::secs(83.0),
            ot2_per_well: Jittered::secs(60.0),
            camera_capture: Jittered::secs(15.0),
            barty_pump_ul_per_s: 500.0,
            barty_overhead: Jittered::secs(12.0),
            ot2_batch_exponent: 0.78,
        }
    }
}

impl TimingModel {
    /// Expected duration of an OT-2 protocol over `wells` wells (no jitter),
    /// for capacity planning and tests.
    pub fn ot2_protocol_mean_s(&self, wells: usize) -> f64 {
        self.ot2_protocol_fixed.mean_s + self.ot2_wells_mean_s(wells)
    }

    /// Expected well-dispensing time for a batch of `wells` (no jitter),
    /// with the economy-of-scale exponent applied.
    pub fn ot2_wells_mean_s(&self, wells: usize) -> f64 {
        self.ot2_per_well.mean_s * (wells as f64).powf(self.ot2_batch_exponent)
    }

    /// Expected duration of one full B-well mix iteration (two transfers, a
    /// protocol, a capture).
    pub fn iteration_mean_s(&self, batch: usize) -> f64 {
        2.0 * self.pf400_transfer.mean_s
            + self.ot2_protocol_mean_s(batch)
            + self.camera_capture.mean_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_matches_table1_shape() {
        let t = TimingModel::default();
        // One B=1 iteration ≈ 228 s (3 m 48 s upload cadence).
        let iter_s = t.iteration_mean_s(1);
        assert!((iter_s - 228.0).abs() < 4.0, "iteration {iter_s}");
        // 128 iterations ≈ 8 h 06 m; plate logistics push it to ≈ 8 h 12 m.
        let loop_s = 128.0 * iter_s;
        assert!(loop_s > 7.9 * 3600.0 && loop_s < 8.3 * 3600.0, "loop {loop_s}");
        // Synthesis 128 × protocol(1) ≈ 5 h 10 m.
        let synth_s = 128.0 * t.ot2_protocol_mean_s(1);
        assert!((synth_s / 3600.0 - 5.08).abs() < 0.2, "synthesis {synth_s}");
        // Transfer bucket 128 × (2 moves + capture) ≈ 3 h.
        let transfer_s = 128.0 * (2.0 * t.pf400_transfer.mean_s + t.camera_capture.mean_s);
        assert!((transfer_s / 3600.0 - 3.0).abs() < 0.15, "transfer {transfer_s}");
    }

    #[test]
    fn jitter_is_bounded_and_reproducible() {
        let j = Jittered { mean_s: 100.0, jitter: 0.05 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = j.sample(&mut rng).as_secs_f64();
            assert!((95.0..=105.0).contains(&d));
        }
        let a = j.sample(&mut StdRng::seed_from_u64(9));
        let b = j.sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_jitter_is_exact() {
        let j = Jittered { mean_s: 42.0, jitter: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(j.sample(&mut rng), SimDuration::from_secs(42));
    }

    #[test]
    fn batch_scaling_is_sublinear_in_wells() {
        let t = TimingModel::default();
        // B = 64 well-time per well is far below the B = 1 rate.
        let per_well_1 = t.ot2_wells_mean_s(1);
        let per_well_64 = t.ot2_wells_mean_s(64) / 64.0;
        assert!((per_well_1 - 60.0).abs() < 1e-9);
        assert!(per_well_64 < 30.0, "B=64 rate {per_well_64}");
        // Figure-4 endpoint check: a full 128-sample B=64 run is ~1 hour.
        let total_64 = 2.0 * (t.iteration_mean_s(64));
        assert!((3000.0..4200.0).contains(&total_64), "B=64 total {total_64}");
    }
}
