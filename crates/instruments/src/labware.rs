//! Microplate labware: 96-well plates, well addressing, volume tracking.

use std::fmt;

/// A well address on a plate ("A1" … "H12").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WellIndex {
    /// Row, 0-based (0 = A).
    pub row: usize,
    /// Column, 0-based (0 = 1).
    pub col: usize,
}

impl WellIndex {
    /// Construct from 0-based row/col.
    pub fn new(row: usize, col: usize) -> WellIndex {
        WellIndex { row, col }
    }

    /// Parse "A1"-style labels (case-insensitive).
    pub fn parse(s: &str) -> Option<WellIndex> {
        let mut chars = s.chars();
        let row_ch = chars.next()?.to_ascii_uppercase();
        if !row_ch.is_ascii_uppercase() {
            return None;
        }
        let row = (row_ch as u8 - b'A') as usize;
        let col_str: String = chars.collect();
        let col: usize = col_str.parse().ok()?;
        if col == 0 {
            return None;
        }
        Some(WellIndex { row, col: col - 1 })
    }

    /// Flat row-major index for a plate with `cols` columns.
    pub fn flat(&self, cols: usize) -> usize {
        self.row * cols + self.col
    }

    /// Inverse of [`WellIndex::flat`].
    pub fn from_flat(i: usize, cols: usize) -> WellIndex {
        WellIndex { row: i / cols, col: i % cols }
    }
}

impl fmt::Display for WellIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", (b'A' + self.row as u8) as char, self.col + 1)
    }
}

/// One well's contents: volume per dye, reservoir order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Well {
    /// Dispensed volume per dye, µL.
    pub volumes_ul: Vec<f64>,
}

impl Well {
    /// Total liquid volume, µL.
    pub fn total_ul(&self) -> f64 {
        self.volumes_ul.iter().sum()
    }

    /// True if nothing has been dispensed.
    pub fn is_empty(&self) -> bool {
        self.volumes_ul.is_empty() || self.total_ul() == 0.0
    }
}

/// Labware errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabwareError {
    /// Address outside the plate.
    BadWell(String),
    /// Dispense would exceed the well's working volume.
    Overflow(String),
    /// The well already holds a sample (wells are single-use in this
    /// protocol).
    AlreadyUsed(String),
}

impl fmt::Display for LabwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabwareError::BadWell(w) => write!(f, "no such well {w}"),
            LabwareError::Overflow(w) => write!(f, "well {w} would overflow"),
            LabwareError::AlreadyUsed(w) => write!(f, "well {w} already contains a sample"),
        }
    }
}

impl std::error::Error for LabwareError {}

/// A 96-well (by default) microplate.
#[derive(Debug, Clone, PartialEq)]
pub struct Microplate {
    /// Rows (8 for a 96-well plate).
    pub rows: usize,
    /// Columns (12 for a 96-well plate).
    pub cols: usize,
    /// Working volume per well, µL.
    pub well_capacity_ul: f64,
    wells: Vec<Well>,
}

impl Microplate {
    /// Standard 96-well plate with 360 µL working volume.
    pub fn standard96() -> Microplate {
        Microplate::new(8, 12, 360.0)
    }

    /// Custom geometry.
    pub fn new(rows: usize, cols: usize, well_capacity_ul: f64) -> Microplate {
        assert!(rows > 0 && cols > 0);
        Microplate { rows, cols, well_capacity_ul, wells: vec![Well::default(); rows * cols] }
    }

    /// Number of wells.
    pub fn well_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The well at `idx`.
    pub fn well(&self, idx: WellIndex) -> Result<&Well, LabwareError> {
        if idx.row >= self.rows || idx.col >= self.cols {
            return Err(LabwareError::BadWell(idx.to_string()));
        }
        Ok(&self.wells[idx.flat(self.cols)])
    }

    /// Dispense `volumes_ul` (per dye) into an unused well.
    pub fn dispense(&mut self, idx: WellIndex, volumes_ul: &[f64]) -> Result<(), LabwareError> {
        if idx.row >= self.rows || idx.col >= self.cols {
            return Err(LabwareError::BadWell(idx.to_string()));
        }
        let cap = self.well_capacity_ul;
        let cols = self.cols;
        let well = &mut self.wells[idx.flat(cols)];
        if !well.is_empty() {
            return Err(LabwareError::AlreadyUsed(idx.to_string()));
        }
        let total: f64 = volumes_ul.iter().sum();
        if total > cap {
            return Err(LabwareError::Overflow(idx.to_string()));
        }
        well.volumes_ul = volumes_ul.to_vec();
        Ok(())
    }

    /// Number of wells holding samples.
    pub fn used_wells(&self) -> usize {
        self.wells.iter().filter(|w| !w.is_empty()).count()
    }

    /// Remaining sample slots.
    pub fn free_wells(&self) -> usize {
        self.well_count() - self.used_wells()
    }

    /// The next `n` unused wells in row-major order.
    pub fn next_free(&self, n: usize) -> Vec<WellIndex> {
        let mut out = Vec::with_capacity(n);
        for (i, w) in self.wells.iter().enumerate() {
            if out.len() == n {
                break;
            }
            if w.is_empty() {
                out.push(WellIndex::from_flat(i, self.cols));
            }
        }
        out
    }

    /// True once every well holds a sample.
    pub fn is_full(&self) -> bool {
        self.used_wells() == self.well_count()
    }

    /// Iterate (index, well).
    pub fn iter(&self) -> impl Iterator<Item = (WellIndex, &Well)> {
        let cols = self.cols;
        self.wells.iter().enumerate().map(move |(i, w)| (WellIndex::from_flat(i, cols), w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_index_parse_and_display() {
        assert_eq!(WellIndex::parse("A1"), Some(WellIndex::new(0, 0)));
        assert_eq!(WellIndex::parse("h12"), Some(WellIndex::new(7, 11)));
        assert_eq!(WellIndex::parse("C07"), Some(WellIndex::new(2, 6)));
        assert_eq!(WellIndex::parse("A0"), None);
        assert_eq!(WellIndex::parse("12"), None);
        assert_eq!(WellIndex::parse(""), None);
        assert_eq!(WellIndex::new(7, 11).to_string(), "H12");
    }

    #[test]
    fn flat_roundtrip() {
        for i in 0..96 {
            assert_eq!(WellIndex::from_flat(i, 12).flat(12), i);
        }
    }

    #[test]
    fn dispense_tracks_usage() {
        let mut plate = Microplate::standard96();
        assert_eq!(plate.well_count(), 96);
        assert_eq!(plate.free_wells(), 96);
        plate.dispense(WellIndex::new(0, 0), &[10.0, 5.0, 0.0, 20.0]).unwrap();
        assert_eq!(plate.used_wells(), 1);
        let w = plate.well(WellIndex::new(0, 0)).unwrap();
        assert_eq!(w.total_ul(), 35.0);
        assert!(!plate.is_full());
    }

    #[test]
    fn dispense_errors() {
        let mut plate = Microplate::standard96();
        assert!(matches!(
            plate.dispense(WellIndex::new(9, 0), &[1.0]),
            Err(LabwareError::BadWell(_))
        ));
        assert!(matches!(
            plate.dispense(WellIndex::new(0, 0), &[500.0]),
            Err(LabwareError::Overflow(_))
        ));
        plate.dispense(WellIndex::new(0, 0), &[10.0]).unwrap();
        assert!(matches!(
            plate.dispense(WellIndex::new(0, 0), &[10.0]),
            Err(LabwareError::AlreadyUsed(_))
        ));
    }

    #[test]
    fn next_free_walks_row_major() {
        let mut plate = Microplate::standard96();
        plate.dispense(WellIndex::new(0, 0), &[1.0]).unwrap();
        plate.dispense(WellIndex::new(0, 2), &[1.0]).unwrap();
        let free = plate.next_free(3);
        assert_eq!(free, vec![WellIndex::new(0, 1), WellIndex::new(0, 3), WellIndex::new(0, 4)]);
    }

    #[test]
    fn fills_up() {
        let mut plate = Microplate::new(2, 2, 100.0);
        for idx in plate.next_free(4) {
            plate.dispense(idx, &[1.0]).unwrap();
        }
        assert!(plate.is_full());
        assert!(plate.next_free(1).is_empty());
        assert_eq!(plate.iter().count(), 4);
    }
}
