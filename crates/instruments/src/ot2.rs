//! `ot2` — the Opentrons OT-2 pipetting robot: "an automatic pipetting
//! device that contains four separate color reservoirs and a set of pipette
//! tips … it mixes liquids in the proportions set by the optimization
//! algorithm" (paper §2.2).

use crate::module::{
    ActionArgs, ActionOutcome, Instrument, InstrumentError, ModuleKind, ModuleState,
};
use crate::timing::TimingModel;
use crate::world::World;
use rand::rngs::StdRng;

/// Liquid-handler simulator.
#[derive(Debug, Clone)]
pub struct Ot2 {
    name: String,
    state: ModuleState,
    /// Deck nest where the working plate must sit.
    deck_slot: String,
    /// Reservoir bank name in the world (conventionally the module name).
    bank: String,
    /// Clean tips remaining.
    tips_remaining: u32,
    protocols_run: u64,
    wells_dispensed: u64,
}

impl Ot2 {
    /// A handler with a full tip supply.
    pub fn new(
        name: impl Into<String>,
        deck_slot: impl Into<String>,
        bank: impl Into<String>,
        tips: u32,
    ) -> Ot2 {
        Ot2 {
            name: name.into(),
            state: ModuleState::Idle,
            deck_slot: deck_slot.into(),
            bank: bank.into(),
            tips_remaining: tips,
            protocols_run: 0,
            wells_dispensed: 0,
        }
    }

    /// Tips left in the racks.
    pub fn tips_remaining(&self) -> u32 {
        self.tips_remaining
    }

    /// Protocols completed.
    pub fn protocols_run(&self) -> u64 {
        self.protocols_run
    }

    /// Total wells dispensed.
    pub fn wells_dispensed(&self) -> u64 {
        self.wells_dispensed
    }

    /// The deck nest name.
    pub fn deck_slot(&self) -> &str {
        &self.deck_slot
    }

    /// The reservoir bank this handler draws from.
    pub fn bank_name(&self) -> &str {
        &self.bank
    }
}

impl Instrument for Ot2 {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ModuleKind {
        ModuleKind::LiquidHandler
    }

    fn state(&self) -> ModuleState {
        self.state
    }

    fn reset(&mut self) {
        self.state = ModuleState::Idle;
    }

    fn mark_error(&mut self) {
        self.state = ModuleState::Error;
    }

    fn actions(&self) -> &'static [&'static str] {
        &["run_protocol"]
    }

    fn execute(
        &mut self,
        action: &str,
        args: &ActionArgs,
        world: &mut World,
        timing: &TimingModel,
        rng: &mut StdRng,
    ) -> Result<ActionOutcome, InstrumentError> {
        if self.state == ModuleState::Error {
            return Err(InstrumentError::NeedsReset);
        }
        match action {
            "run_protocol" => {
                let protocol = args.protocol.as_ref().ok_or_else(|| {
                    InstrumentError::BadArgs("run_protocol needs a protocol payload".into())
                })?;
                let n_dyes = world.dyes.len();

                // Validate everything before mutating anything: plate present,
                // arity, tips, reservoir volumes, then the wells themselves.
                let plate_id = world.plate_at(&self.deck_slot)?.ok_or_else(|| {
                    InstrumentError::World(crate::world::WorldError::SlotEmpty(
                        self.deck_slot.clone(),
                    ))
                })?;
                for d in &protocol.dispenses {
                    if d.volumes_ul.len() != n_dyes {
                        return Err(InstrumentError::BadArgs(format!(
                            "dispense for {} has {} volumes, dye set has {n_dyes}",
                            d.well,
                            d.volumes_ul.len()
                        )));
                    }
                    if d.volumes_ul.iter().any(|v| !v.is_finite() || *v < 0.0) {
                        return Err(InstrumentError::BadArgs(format!(
                            "invalid volume for {}",
                            d.well
                        )));
                    }
                }
                let tips_needed = protocol.dyes_used(n_dyes) as u32;
                if tips_needed > self.tips_remaining {
                    return Err(InstrumentError::OutOfTips);
                }
                let demand = protocol.demand_ul(n_dyes);
                {
                    let bank = world.bank(&self.bank)?;
                    for (res, need) in bank.reservoirs.iter().zip(&demand) {
                        if res.volume_ul + 1e-9 < *need {
                            return Err(InstrumentError::InsufficientReservoir {
                                dye: res.dye.clone(),
                            });
                        }
                    }
                }
                {
                    let plate = world.plate(plate_id)?;
                    for d in &protocol.dispenses {
                        let well = plate.well(d.well)?;
                        if !well.is_empty() {
                            return Err(InstrumentError::Labware(
                                crate::labware::LabwareError::AlreadyUsed(d.well.to_string()),
                            ));
                        }
                        let total: f64 = d.volumes_ul.iter().sum();
                        if total > plate.well_capacity_ul {
                            return Err(InstrumentError::Labware(
                                crate::labware::LabwareError::Overflow(d.well.to_string()),
                            ));
                        }
                    }
                }

                // Commit: drain reservoirs, fill wells, consume tips.
                {
                    let bank = world.bank_mut(&self.bank)?;
                    for (res, need) in bank.reservoirs.iter_mut().zip(&demand) {
                        res.volume_ul -= need;
                    }
                }
                {
                    let plate = world.plate_mut(plate_id)?;
                    for d in &protocol.dispenses {
                        plate.dispense(d.well, &d.volumes_ul)?;
                    }
                }
                self.tips_remaining -= tips_needed;
                self.protocols_run += 1;
                self.wells_dispensed += protocol.dispenses.len() as u64;

                let n = protocol.dispenses.len();
                // Per-well time with batch economies of scale: one jittered
                // per-well draw scaled by n^exponent.
                let scale = (n as f64).powf(timing.ot2_batch_exponent);
                let wells_time = timing.ot2_per_well.sample(rng).mul_f64(scale);
                let duration = timing.ot2_protocol_fixed.sample(rng) + wells_time;
                Ok(ActionOutcome::lasting(duration))
            }
            other => Err(InstrumentError::UnknownAction(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labware::{Microplate, WellIndex};
    use crate::module::{ProtocolSpec, WellDispense};
    use crate::world::ReservoirBank;
    use rand::SeedableRng;
    use sdl_color::{DyeSet, MixKind};

    fn setup() -> (Ot2, World, TimingModel, StdRng) {
        let dyes = DyeSet::cmyk();
        let mut world = World::new(dyes.clone(), MixKind::BeerLambert);
        world.add_slot("ot2.deck");
        world.add_bank("ot2", ReservoirBank::full(&dyes, 4000.0));
        world.spawn_plate("ot2.deck", Microplate::standard96()).unwrap();
        (
            Ot2::new("ot2", "ot2.deck", "ot2", 960),
            world,
            TimingModel::default(),
            StdRng::seed_from_u64(3),
        )
    }

    fn protocol(wells: &[(usize, usize)], volumes: &[f64]) -> ActionArgs {
        ActionArgs::none().with_protocol(ProtocolSpec {
            name: "mix_colors".into(),
            dispenses: wells
                .iter()
                .map(|&(r, c)| WellDispense {
                    well: WellIndex::new(r, c),
                    volumes_ul: volumes.to_vec(),
                })
                .collect(),
        })
    }

    #[test]
    fn protocol_conserves_volume() {
        let (mut ot2, mut world, timing, mut rng) = setup();
        let args = protocol(&[(0, 0), (0, 1)], &[10.0, 5.0, 0.0, 20.0]);
        ot2.execute("run_protocol", &args, &mut world, &timing, &mut rng).unwrap();

        let plate_id = world.plate_at("ot2.deck").unwrap().unwrap();
        let w = world.plate(plate_id).unwrap().well(WellIndex::new(0, 1)).unwrap();
        assert_eq!(w.volumes_ul, vec![10.0, 5.0, 0.0, 20.0]);

        let bank = world.bank("ot2").unwrap();
        assert_eq!(bank.reservoirs[0].volume_ul, 4000.0 - 20.0);
        assert_eq!(bank.reservoirs[2].volume_ul, 4000.0);
        assert_eq!(bank.reservoirs[3].volume_ul, 4000.0 - 40.0);
        // 3 dyes used → 3 tips.
        assert_eq!(ot2.tips_remaining(), 957);
        assert_eq!(ot2.protocols_run(), 1);
        assert_eq!(ot2.wells_dispensed(), 2);
    }

    #[test]
    fn duration_scales_with_batch() {
        let (mut ot2, mut world, timing, mut rng) = setup();
        let d1 = ot2
            .execute(
                "run_protocol",
                &protocol(&[(0, 0)], &[1.0, 1.0, 1.0, 1.0]),
                &mut world,
                &timing,
                &mut rng,
            )
            .unwrap()
            .duration;
        let wells: Vec<(usize, usize)> = (0..8).map(|c| (1usize, c)).collect();
        let d8 = ot2
            .execute(
                "run_protocol",
                &protocol(&wells, &[1.0, 1.0, 1.0, 1.0]),
                &mut world,
                &timing,
                &mut rng,
            )
            .unwrap()
            .duration;
        let expect_ratio = timing.ot2_protocol_mean_s(8) / timing.ot2_protocol_mean_s(1);
        let ratio = d8.as_secs_f64() / d1.as_secs_f64();
        assert!((ratio - expect_ratio).abs() < 0.25, "ratio {ratio} expect {expect_ratio}");
    }

    #[test]
    fn insufficient_reservoir_fails_atomically() {
        let (mut ot2, mut world, timing, mut rng) = setup();
        world.bank_mut("ot2").unwrap().reservoirs[3].volume_ul = 5.0;
        let err = ot2.execute(
            "run_protocol",
            &protocol(&[(0, 0)], &[0.0, 0.0, 0.0, 10.0]),
            &mut world,
            &timing,
            &mut rng,
        );
        assert_eq!(err, Err(InstrumentError::InsufficientReservoir { dye: "black".into() }));
        // Nothing was dispensed or consumed.
        let plate_id = world.plate_at("ot2.deck").unwrap().unwrap();
        assert_eq!(world.plate(plate_id).unwrap().used_wells(), 0);
        assert_eq!(ot2.tips_remaining(), 960);
    }

    #[test]
    fn out_of_tips() {
        let dyes = DyeSet::cmyk();
        let mut world = World::new(dyes.clone(), MixKind::BeerLambert);
        world.add_slot("ot2.deck");
        world.add_bank("ot2", ReservoirBank::full(&dyes, 4000.0));
        world.spawn_plate("ot2.deck", Microplate::standard96()).unwrap();
        let mut ot2 = Ot2::new("ot2", "ot2.deck", "ot2", 2);
        let mut rng = StdRng::seed_from_u64(4);
        let err = ot2.execute(
            "run_protocol",
            &protocol(&[(0, 0)], &[1.0, 1.0, 1.0, 1.0]),
            &mut world,
            &TimingModel::default(),
            &mut rng,
        );
        assert_eq!(err, Err(InstrumentError::OutOfTips));
    }

    #[test]
    fn missing_plate_fails() {
        let dyes = DyeSet::cmyk();
        let mut world = World::new(dyes.clone(), MixKind::BeerLambert);
        world.add_slot("ot2.deck");
        world.add_bank("ot2", ReservoirBank::full(&dyes, 4000.0));
        let mut ot2 = Ot2::new("ot2", "ot2.deck", "ot2", 960);
        let mut rng = StdRng::seed_from_u64(5);
        let err = ot2.execute(
            "run_protocol",
            &protocol(&[(0, 0)], &[1.0, 1.0, 1.0, 1.0]),
            &mut world,
            &TimingModel::default(),
            &mut rng,
        );
        assert!(matches!(err, Err(InstrumentError::World(_))));
    }

    #[test]
    fn reused_well_fails_before_any_mutation() {
        let (mut ot2, mut world, timing, mut rng) = setup();
        ot2.execute(
            "run_protocol",
            &protocol(&[(0, 0)], &[1.0, 1.0, 1.0, 1.0]),
            &mut world,
            &timing,
            &mut rng,
        )
        .unwrap();
        let before = world.bank("ot2").unwrap().reservoirs[0].volume_ul;
        let err = ot2.execute(
            "run_protocol",
            &protocol(&[(0, 1), (0, 0)], &[1.0, 1.0, 1.0, 1.0]),
            &mut world,
            &timing,
            &mut rng,
        );
        assert!(matches!(err, Err(InstrumentError::Labware(_))));
        assert_eq!(world.bank("ot2").unwrap().reservoirs[0].volume_ul, before);
        let plate_id = world.plate_at("ot2.deck").unwrap().unwrap();
        assert_eq!(world.plate(plate_id).unwrap().used_wells(), 1, "batch must be atomic");
    }

    #[test]
    fn wrong_arity_rejected() {
        let (mut ot2, mut world, timing, mut rng) = setup();
        let err = ot2.execute(
            "run_protocol",
            &protocol(&[(0, 0)], &[1.0, 1.0]),
            &mut world,
            &timing,
            &mut rng,
        );
        assert!(matches!(err, Err(InstrumentError::BadArgs(_))));
    }
}
