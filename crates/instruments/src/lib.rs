//! `sdl-instruments` — simulated workcell hardware.
//!
//! One simulator per module of the paper's RPL workcell (Figure 1):
//!
//! * [`SciClops`] — plate crane with storage towers;
//! * [`Pf400`] — rail-mounted transfer arm;
//! * [`Ot2`] — pipetting robot with reservoirs and tips;
//! * [`Barty`] — peristaltic-pump liquid replenisher;
//! * [`CameraSim`] — webcam + ring light, rendering real frames through
//!   `sdl-vision`.
//!
//! Shared physical state (plates, slots, reservoir banks) lives in
//! [`World`]; labware in [`Microplate`]; action durations in the calibrated
//! [`TimingModel`]. Every device implements the [`Instrument`] trait — the
//! module abstraction of the WEI platform (paper §2.2) — so the workflow
//! engine addresses them uniformly and alternatives can be swapped in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barty;
mod camera;
mod labware;
mod module;
mod ot2;
mod pf400;
mod sciclops;
mod timing;
mod world;

pub use barty::Barty;
pub use camera::CameraSim;
pub use labware::{LabwareError, Microplate, Well, WellIndex};
pub use module::{
    ActionArgs, ActionData, ActionOutcome, Instrument, InstrumentError, ModuleKind, ModuleState,
    ProtocolSpec, WellDispense,
};
pub use ot2::Ot2;
pub use pf400::Pf400;
pub use sciclops::SciClops;
pub use sdl_vision::{CameraGeometry, DriftSpec, Fidelity};
pub use timing::{Jittered, TimingModel};
pub use world::{PlateId, Reservoir, ReservoirBank, World, WorldError};
