//! Shared physical state of the workcell: plates, their locations, and the
//! OT-2 reservoir banks that `barty` refills.
//!
//! Instruments own their internal mechanisms (tips, towers, pumps), but
//! anything two instruments can both touch lives here — the `pf400` hands a
//! plate to the `ot2`, `barty` pumps into the `ot2`'s reservoirs, the camera
//! looks at whatever plate sits in its nest.

use crate::labware::{Microplate, WellIndex};
use sdl_color::{DyeSet, LinRgb, MixEngine, MixKind, Recipe};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a physical plate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlateId(pub u32);

impl fmt::Display for PlateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plate-{}", self.0)
    }
}

/// One dye reservoir on an OT-2 deck.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    /// Dye name (matches the dye set).
    pub dye: String,
    /// Current volume, µL.
    pub volume_ul: f64,
    /// Capacity, µL.
    pub capacity_ul: f64,
}

impl Reservoir {
    /// Fraction filled, 0–1.
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity_ul <= 0.0 {
            0.0
        } else {
            self.volume_ul / self.capacity_ul
        }
    }
}

/// The bank of dye reservoirs attached to one liquid handler.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservoirBank {
    /// Reservoirs in dye-set order.
    pub reservoirs: Vec<Reservoir>,
}

impl ReservoirBank {
    /// A bank for `dyes`, each reservoir filled to `capacity_ul`.
    pub fn full(dyes: &DyeSet, capacity_ul: f64) -> ReservoirBank {
        ReservoirBank {
            reservoirs: dyes
                .dyes
                .iter()
                .map(|d| Reservoir { dye: d.name.clone(), volume_ul: capacity_ul, capacity_ul })
                .collect(),
        }
    }

    /// Lowest fill fraction across the bank.
    pub fn min_fill(&self) -> f64 {
        self.reservoirs.iter().map(Reservoir::fill_fraction).fold(1.0, f64::min)
    }

    /// Would `volumes_ul` (per dye) be satisfiable right now?
    pub fn can_supply(&self, volumes_ul: &[f64]) -> bool {
        self.reservoirs.len() == volumes_ul.len()
            && self.reservoirs.iter().zip(volumes_ul).all(|(r, &v)| r.volume_ul + 1e-9 >= v)
    }
}

/// Errors on world-state operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// No slot with that name exists in this workcell.
    NoSuchSlot(String),
    /// The slot already holds a plate.
    SlotOccupied(String),
    /// The slot is empty.
    SlotEmpty(String),
    /// Unknown plate id.
    NoSuchPlate(String),
    /// Unknown reservoir bank.
    NoSuchBank(String),
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::NoSuchSlot(s) => write!(f, "no such slot '{s}'"),
            WorldError::SlotOccupied(s) => write!(f, "slot '{s}' is occupied"),
            WorldError::SlotEmpty(s) => write!(f, "slot '{s}' is empty"),
            WorldError::NoSuchPlate(p) => write!(f, "no such plate '{p}'"),
            WorldError::NoSuchBank(b) => write!(f, "no reservoir bank '{b}'"),
        }
    }
}

impl std::error::Error for WorldError {}

/// The shared physical state.
#[derive(Debug, Clone)]
pub struct World {
    /// The dye stocks in play (physical truth for color formation).
    pub dyes: DyeSet,
    /// The mixing model, compiled once at construction — the measurement
    /// hot path evaluates ~96 wells per frame and must not rebuild (or
    /// box) the model per well. Private so the kind and the compiled form
    /// cannot desync; read via [`World::mix`].
    engine: MixEngine,
    plates: BTreeMap<PlateId, Microplate>,
    slots: BTreeMap<String, Option<PlateId>>,
    banks: BTreeMap<String, ReservoirBank>,
    next_plate: u32,
    retired: Vec<PlateId>,
}

impl World {
    /// Fresh world with the given dye set and mixing model.
    pub fn new(dyes: DyeSet, mix: MixKind) -> World {
        World {
            dyes,
            engine: MixEngine::new(mix),
            plates: BTreeMap::new(),
            slots: BTreeMap::new(),
            banks: BTreeMap::new(),
            next_plate: 1,
            retired: Vec::new(),
        }
    }

    /// The forward mixing model in effect.
    pub fn mix(&self) -> MixKind {
        self.engine.kind()
    }

    /// Declare a plate slot (location a plate can occupy).
    pub fn add_slot(&mut self, name: impl Into<String>) {
        self.slots.insert(name.into(), None);
    }

    /// Declare a reservoir bank for a liquid handler.
    pub fn add_bank(&mut self, name: impl Into<String>, bank: ReservoirBank) {
        self.banks.insert(name.into(), bank);
    }

    /// All slot names.
    pub fn slot_names(&self) -> Vec<&str> {
        self.slots.keys().map(String::as_str).collect()
    }

    /// Create a new plate directly in `slot` (the sciclops does this).
    pub fn spawn_plate(&mut self, slot: &str, plate: Microplate) -> Result<PlateId, WorldError> {
        let entry = self.slots.get_mut(slot).ok_or_else(|| WorldError::NoSuchSlot(slot.into()))?;
        if entry.is_some() {
            return Err(WorldError::SlotOccupied(slot.into()));
        }
        let id = PlateId(self.next_plate);
        self.next_plate += 1;
        self.plates.insert(id, plate);
        *entry = Some(id);
        Ok(id)
    }

    /// Which plate occupies `slot`?
    pub fn plate_at(&self, slot: &str) -> Result<Option<PlateId>, WorldError> {
        self.slots.get(slot).copied().ok_or_else(|| WorldError::NoSuchSlot(slot.into()))
    }

    /// Move a plate between slots (the pf400 does this). Moving to the
    /// special `trash` slot retires the plate.
    pub fn move_plate(&mut self, from: &str, to: &str) -> Result<PlateId, WorldError> {
        if to == "trash" {
            return self.retire_plate(from);
        }
        let id = self.plate_at(from)?.ok_or_else(|| WorldError::SlotEmpty(from.into()))?;
        {
            let dest = self.slots.get(to).ok_or_else(|| WorldError::NoSuchSlot(to.into()))?;
            if dest.is_some() {
                return Err(WorldError::SlotOccupied(to.into()));
            }
        }
        self.slots.insert(from.into(), None);
        self.slots.insert(to.into(), Some(id));
        Ok(id)
    }

    /// Remove a plate from the workcell (trash). The plate record is kept in
    /// a retired list for post-hoc analysis.
    pub fn retire_plate(&mut self, slot: &str) -> Result<PlateId, WorldError> {
        let id = self.plate_at(slot)?.ok_or_else(|| WorldError::SlotEmpty(slot.into()))?;
        self.slots.insert(slot.into(), None);
        self.retired.push(id);
        Ok(id)
    }

    /// Plates retired so far.
    pub fn retired_plates(&self) -> &[PlateId] {
        &self.retired
    }

    /// Immutable plate access.
    pub fn plate(&self, id: PlateId) -> Result<&Microplate, WorldError> {
        self.plates.get(&id).ok_or_else(|| WorldError::NoSuchPlate(id.to_string()))
    }

    /// Mutable plate access.
    pub fn plate_mut(&mut self, id: PlateId) -> Result<&mut Microplate, WorldError> {
        self.plates.get_mut(&id).ok_or_else(|| WorldError::NoSuchPlate(id.to_string()))
    }

    /// Immutable bank access.
    pub fn bank(&self, name: &str) -> Result<&ReservoirBank, WorldError> {
        self.banks.get(name).ok_or_else(|| WorldError::NoSuchBank(name.into()))
    }

    /// Mutable bank access.
    pub fn bank_mut(&mut self, name: &str) -> Result<&mut ReservoirBank, WorldError> {
        self.banks.get_mut(name).ok_or_else(|| WorldError::NoSuchBank(name.into()))
    }

    /// The *true* (noise-free) color of a well, per the active mixing model.
    /// `None` for empty wells.
    pub fn well_color(&self, id: PlateId, idx: WellIndex) -> Result<Option<LinRgb>, WorldError> {
        let plate = self.plate(id)?;
        let well = plate.well(idx).map_err(|_| WorldError::NoSuchPlate(idx.to_string()))?;
        if well.is_empty() {
            return Ok(None);
        }
        let recipe = Recipe::new(well.volumes_ul.clone()).expect("stored volumes are valid");
        Ok(Some(self.engine.well_color(&self.dyes, &recipe)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        let mut w = World::new(DyeSet::cmyk(), MixKind::BeerLambert);
        w.add_slot("camera.nest");
        w.add_slot("ot2.deck");
        w.add_slot("sciclops.exchange");
        w.add_bank("ot2", ReservoirBank::full(&DyeSet::cmyk(), 4000.0));
        w
    }

    #[test]
    fn plate_lifecycle() {
        let mut w = world();
        let id = w.spawn_plate("sciclops.exchange", Microplate::standard96()).unwrap();
        assert_eq!(w.plate_at("sciclops.exchange").unwrap(), Some(id));
        w.move_plate("sciclops.exchange", "camera.nest").unwrap();
        assert_eq!(w.plate_at("sciclops.exchange").unwrap(), None);
        assert_eq!(w.plate_at("camera.nest").unwrap(), Some(id));
        let retired = w.retire_plate("camera.nest").unwrap();
        assert_eq!(retired, id);
        assert_eq!(w.retired_plates(), &[id]);
        assert!(w.plate(id).is_ok(), "retired plates remain inspectable");
    }

    #[test]
    fn movement_errors() {
        let mut w = world();
        assert_eq!(
            w.move_plate("camera.nest", "ot2.deck"),
            Err(WorldError::SlotEmpty("camera.nest".into()))
        );
        w.spawn_plate("camera.nest", Microplate::standard96()).unwrap();
        w.spawn_plate("ot2.deck", Microplate::standard96()).unwrap();
        assert_eq!(
            w.move_plate("camera.nest", "ot2.deck"),
            Err(WorldError::SlotOccupied("ot2.deck".into()))
        );
        assert_eq!(
            w.move_plate("nowhere", "ot2.deck"),
            Err(WorldError::NoSuchSlot("nowhere".into()))
        );
        assert_eq!(
            w.spawn_plate("camera.nest", Microplate::standard96()),
            Err(WorldError::SlotOccupied("camera.nest".into()))
        );
    }

    #[test]
    fn bank_supply_checks() {
        let mut w = world();
        {
            let bank = w.bank_mut("ot2").unwrap();
            assert!(bank.can_supply(&[100.0, 100.0, 100.0, 100.0]));
            bank.reservoirs[3].volume_ul = 50.0;
            assert!(!bank.can_supply(&[0.0, 0.0, 0.0, 60.0]));
            assert!(bank.min_fill() < 0.02);
        }
        assert!(w.bank("nope").is_err());
    }

    #[test]
    fn well_color_uses_mix_model() {
        let mut w = world();
        let id = w.spawn_plate("camera.nest", Microplate::standard96()).unwrap();
        let idx = WellIndex::new(0, 0);
        assert_eq!(w.well_color(id, idx).unwrap(), None);
        w.plate_mut(id).unwrap().dispense(idx, &[0.0, 0.0, 0.0, 30.0]).unwrap();
        let c = w.well_color(id, idx).unwrap().unwrap();
        assert!(c.g < 0.25, "black dye darkens the well: {c:?}");
    }
}
