//! The module abstraction: "each module is represented by a software
//! abstraction that exposes a single device and, via interface methods, the
//! actions that the device can perform" (paper §2.2).

use crate::labware::WellIndex;
use crate::timing::TimingModel;
use crate::world::{World, WorldError};
use rand::rngs::StdRng;
use sdl_desim::SimDuration;
use sdl_vision::ImageRgb8;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Module lifecycle state, mirroring WEI's module status model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModuleState {
    /// Powered and ready for a command.
    #[default]
    Idle,
    /// Executing a command (observable in the live executor).
    Busy,
    /// A command failed; requires a reset before new commands.
    Error,
}

impl fmt::Display for ModuleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleState::Idle => write!(f, "IDLE"),
            ModuleState::Busy => write!(f, "BUSY"),
            ModuleState::Error => write!(f, "ERROR"),
        }
    }
}

/// The device class a module belongs to (used for workcell validation and
/// for deciding which commands count as *robotic* in the CCWH metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleKind {
    /// Plate storage/staging (sciclops).
    PlateCrane,
    /// Plate transport arm (pf400).
    Manipulator,
    /// Pipetting robot (ot2).
    LiquidHandler,
    /// Reservoir replenisher (barty).
    LiquidReplenisher,
    /// Imaging station (camera).
    Camera,
}

impl ModuleKind {
    /// Whether commands to this module count as robotic actions (the camera
    /// is a sensor, not a robot).
    pub fn is_robotic(self) -> bool {
        !matches!(self, ModuleKind::Camera)
    }

    /// Name as used in workcell YAML `type:` fields.
    pub fn type_name(self) -> &'static str {
        match self {
            ModuleKind::PlateCrane => "plate_crane",
            ModuleKind::Manipulator => "manipulator",
            ModuleKind::LiquidHandler => "liquid_handler",
            ModuleKind::LiquidReplenisher => "liquid_replenisher",
            ModuleKind::Camera => "camera",
        }
    }

    /// Parse a workcell `type:` field.
    pub fn parse(s: &str) -> Option<ModuleKind> {
        match s {
            "plate_crane" => Some(ModuleKind::PlateCrane),
            "manipulator" => Some(ModuleKind::Manipulator),
            "liquid_handler" => Some(ModuleKind::LiquidHandler),
            "liquid_replenisher" => Some(ModuleKind::LiquidReplenisher),
            "camera" => Some(ModuleKind::Camera),
            _ => None,
        }
    }
}

/// One well's dispense instruction inside an OT-2 protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct WellDispense {
    /// Destination well.
    pub well: WellIndex,
    /// Volume per dye, µL, reservoir order.
    pub volumes_ul: Vec<f64>,
}

/// An OT-2 protocol: the "mix colors" payload referenced in Figure 2.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProtocolSpec {
    /// Protocol name (for run logs; e.g. `combine_colors_384.yaml`).
    pub name: String,
    /// Dispenses to perform.
    pub dispenses: Vec<WellDispense>,
}

impl ProtocolSpec {
    /// Total volume needed per dye, µL.
    pub fn demand_ul(&self, n_dyes: usize) -> Vec<f64> {
        let mut demand = vec![0.0; n_dyes];
        for d in &self.dispenses {
            for (i, v) in d.volumes_ul.iter().enumerate() {
                if i < n_dyes {
                    demand[i] += v;
                }
            }
        }
        demand
    }

    /// Distinct dyes actually used (tips needed).
    pub fn dyes_used(&self, n_dyes: usize) -> usize {
        self.demand_ul(n_dyes).iter().filter(|v| **v > 0.0).count()
    }
}

/// Arguments to a module action: string key/values plus an optional protocol
/// payload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActionArgs {
    /// Simple key/value arguments (locations, tower names…).
    pub kv: BTreeMap<String, String>,
    /// Structured payload for `run_protocol`.
    pub protocol: Option<ProtocolSpec>,
}

impl ActionArgs {
    /// No arguments.
    pub fn none() -> ActionArgs {
        ActionArgs::default()
    }

    /// Builder: add a key/value.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> ActionArgs {
        self.kv.insert(key.into(), value.into());
        self
    }

    /// Builder: attach a protocol.
    pub fn with_protocol(mut self, protocol: ProtocolSpec) -> ActionArgs {
        self.protocol = Some(protocol);
        self
    }

    /// Optional lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    /// Required lookup.
    pub fn req(&self, key: &str) -> Result<&str, InstrumentError> {
        self.get(key).ok_or_else(|| InstrumentError::BadArgs(format!("missing argument '{key}'")))
    }
}

/// Data returned by an action.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionData {
    /// Nothing beyond success.
    None,
    /// A camera frame. Shared, so the camera can recycle the pixel buffer
    /// for the next capture once every consumer has dropped its handle, and
    /// so passing frames through workflow outcomes never copies megapixels.
    Image(Arc<ImageRgb8>),
    /// A created plate id.
    Plate(crate::world::PlateId),
}

/// Result of a successful action.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionOutcome {
    /// How long the action occupies the module.
    pub duration: SimDuration,
    /// Returned data.
    pub data: ActionData,
}

impl ActionOutcome {
    /// An outcome with no data.
    pub fn lasting(duration: SimDuration) -> ActionOutcome {
        ActionOutcome { duration, data: ActionData::None }
    }
}

/// Instrument-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrumentError {
    /// The action name is not in this module's interface.
    UnknownAction(String),
    /// Malformed or missing arguments.
    BadArgs(String),
    /// The module is in ERROR state and needs a reset.
    NeedsReset,
    /// World-state violation (slot occupied, plate missing…).
    World(WorldError),
    /// Labware violation (overflow, reused well…).
    Labware(crate::labware::LabwareError),
    /// The sciclops has no plates left in any tower.
    OutOfPlates,
    /// The OT-2 has no clean tips left.
    OutOfTips,
    /// A reservoir cannot supply the requested volume.
    InsufficientReservoir {
        /// Which dye ran short.
        dye: String,
    },
    /// A barty stock vessel is empty.
    StockEmpty {
        /// Which dye's stock.
        dye: String,
    },
    /// Injected fault: the command failed mid-action.
    InjectedFault,
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrumentError::UnknownAction(a) => write!(f, "unknown action '{a}'"),
            InstrumentError::BadArgs(m) => write!(f, "bad arguments: {m}"),
            InstrumentError::NeedsReset => write!(f, "module is in ERROR state"),
            InstrumentError::World(e) => write!(f, "{e}"),
            InstrumentError::Labware(e) => write!(f, "{e}"),
            InstrumentError::OutOfPlates => write!(f, "no plates available in storage towers"),
            InstrumentError::OutOfTips => write!(f, "no pipette tips remaining"),
            InstrumentError::InsufficientReservoir { dye } => {
                write!(f, "reservoir '{dye}' cannot supply the requested volume")
            }
            InstrumentError::StockEmpty { dye } => write!(f, "stock vessel '{dye}' is empty"),
            InstrumentError::InjectedFault => write!(f, "injected command fault"),
        }
    }
}

impl std::error::Error for InstrumentError {}

impl From<WorldError> for InstrumentError {
    fn from(e: WorldError) -> Self {
        InstrumentError::World(e)
    }
}

impl From<crate::labware::LabwareError> for InstrumentError {
    fn from(e: crate::labware::LabwareError) -> Self {
        InstrumentError::Labware(e)
    }
}

/// A simulated device exposing WEI-style actions.
pub trait Instrument: Send {
    /// Module instance name (e.g. "pf400").
    fn name(&self) -> &str;

    /// Device class.
    fn kind(&self) -> ModuleKind;

    /// Current lifecycle state.
    fn state(&self) -> ModuleState;

    /// Force the module back to IDLE (operator/automated recovery).
    fn reset(&mut self);

    /// The action names this module accepts.
    fn actions(&self) -> &'static [&'static str];

    /// Execute an action against the shared world. Durations come from the
    /// workcell [`TimingModel`]; stochastic effects draw from `rng`.
    fn execute(
        &mut self,
        action: &str,
        args: &ActionArgs,
        world: &mut World,
        timing: &TimingModel,
        rng: &mut StdRng,
    ) -> Result<ActionOutcome, InstrumentError>;

    /// Put the module into ERROR state (used by fault injection).
    fn mark_error(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in [
            ModuleKind::PlateCrane,
            ModuleKind::Manipulator,
            ModuleKind::LiquidHandler,
            ModuleKind::LiquidReplenisher,
            ModuleKind::Camera,
        ] {
            assert_eq!(ModuleKind::parse(k.type_name()), Some(k));
        }
        assert_eq!(ModuleKind::parse("toaster"), None);
        assert!(ModuleKind::Manipulator.is_robotic());
        assert!(!ModuleKind::Camera.is_robotic());
    }

    #[test]
    fn protocol_demand_and_tips() {
        let p = ProtocolSpec {
            name: "mix".into(),
            dispenses: vec![
                WellDispense { well: WellIndex::new(0, 0), volumes_ul: vec![10.0, 0.0, 5.0, 20.0] },
                WellDispense { well: WellIndex::new(0, 1), volumes_ul: vec![0.0, 0.0, 5.0, 10.0] },
            ],
        };
        assert_eq!(p.demand_ul(4), vec![10.0, 0.0, 10.0, 30.0]);
        assert_eq!(p.dyes_used(4), 3);
    }

    #[test]
    fn args_accessors() {
        let args = ActionArgs::none().with("source", "camera.nest").with("target", "ot2.deck");
        assert_eq!(args.get("source"), Some("camera.nest"));
        assert_eq!(args.req("target").unwrap(), "ot2.deck");
        assert!(matches!(args.req("missing"), Err(InstrumentError::BadArgs(_))));
    }
}
