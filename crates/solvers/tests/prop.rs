//! Property tests: every solver is well-behaved on arbitrary histories.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdl_color::Rgb8;
use sdl_solvers::{
    best_observation, uniform_grid, BayesSolver, ColorSolver, Gp, Matrix, Observation, RbfKernel,
    SolverKind,
};

fn arb_history() -> impl Strategy<Value = Vec<Observation>> {
    proptest::collection::vec(
        (proptest::collection::vec(0.0..=1.0f64, 4), 0.0..200.0f64).prop_map(|(ratios, score)| {
            Observation { ratios, measured: Rgb8::new(0, 0, 0), score }
        }),
        0..24,
    )
}

proptest! {
    /// Any solver, any history, any batch: proposals are the right arity and
    /// stay in the unit box.
    #[test]
    fn all_solvers_propose_in_box(
        history in arb_history(),
        batch in 1usize..20,
        seed in 0u64..1000,
    ) {
        for kind in SolverKind::all() {
            let mut solver = kind.build(4);
            let mut rng = StdRng::seed_from_u64(seed);
            let props = solver.propose(Rgb8::PAPER_TARGET, &history, batch, &mut rng);
            prop_assert_eq!(props.len(), batch, "{} returned wrong batch", kind.name());
            for p in &props {
                prop_assert_eq!(p.len(), 4, "{} wrong arity", kind.name());
                for &v in p {
                    prop_assert!((0.0..=1.0).contains(&v), "{} out of box: {}", kind.name(), v);
                    prop_assert!(v.is_finite());
                }
            }
        }
    }

    /// Solvers are deterministic given seed and history.
    #[test]
    fn solvers_are_deterministic(history in arb_history(), seed in 0u64..100) {
        for kind in [SolverKind::Genetic, SolverKind::Bayesian, SolverKind::Annealing, SolverKind::Random] {
            let run = |k: SolverKind| {
                let mut s = k.build(4);
                let mut rng = StdRng::seed_from_u64(seed);
                s.propose(Rgb8::PAPER_TARGET, &history, 4, &mut rng)
            };
            prop_assert_eq!(run(kind), run(kind), "{} nondeterministic", kind.name());
        }
    }

    /// best_observation really is the minimum.
    #[test]
    fn best_observation_is_min(history in arb_history()) {
        match best_observation(&history) {
            Some(best) => {
                for o in &history {
                    prop_assert!(best.score <= o.score);
                }
            }
            None => prop_assert!(history.is_empty()),
        }
    }

    /// Cholesky of A = B Bᵀ + n·I succeeds and reconstructs A.
    #[test]
    fn cholesky_roundtrips_spd(
        entries in proptest::collection::vec(-1.0..1.0f64, 16),
        jitter in 0.1..2.0f64,
    ) {
        let b = Matrix::from_fn(4, 4, |r, c| entries[r * 4 + c]);
        // A = B Bᵀ + jitter I is SPD by construction.
        let a = Matrix::from_fn(4, 4, |r, c| {
            let mut s = 0.0;
            for k in 0..4 {
                s += b[(r, k)] * b[(c, k)];
            }
            s + if r == c { jitter } else { 0.0 }
        });
        let l = a.cholesky().unwrap();
        // L Lᵀ == A.
        for r in 0..4 {
            for c in 0..4 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += l[(r, k)] * l[(c, k)];
                }
                prop_assert!((s - a[(r, c)]).abs() < 1e-9);
            }
        }
        // Solves agree with matvec.
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let rhs = a.matvec(&x);
        let back = a.solve_spd(&rhs).unwrap();
        for (xi, bi) in x.iter().zip(&back) {
            prop_assert!((xi - bi).abs() < 1e-6);
        }
    }

    /// GP posterior mean at a training point approaches the target as noise
    /// shrinks, and variance is non-negative everywhere.
    #[test]
    fn gp_posterior_sane(
        ys in proptest::collection::vec(-5.0..5.0f64, 4..10),
        q in proptest::collection::vec(0.0..=1.0f64, 1),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len())
            .map(|i| vec![i as f64 / (ys.len() - 1) as f64])
            .collect();
        let gp = Gp::fit(&xs, &ys, RbfKernel { noise_variance: 1e-6, ..RbfKernel::default() }).unwrap();
        let (_, var) = gp.predict(&q);
        prop_assert!(var >= 0.0);
        for (x, y) in xs.iter().zip(&ys) {
            let (mu, _) = gp.predict(x);
            prop_assert!((mu - y).abs() < 0.35, "mu {mu} vs y {y}");
        }
        // EI is non-negative for any incumbent.
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(gp.expected_improvement(&q, best) >= 0.0);
    }

    /// Incremental `Gp::extend` matches a from-scratch `Gp::fit` — mean,
    /// variance and EI — to 1e-9 across random histories (the arithmetic is
    /// ordered to be bit-identical; the tolerance guards the property, the
    /// campaign fingerprint test guards the bits).
    #[test]
    fn gp_extend_matches_refit(
        points in proptest::collection::vec(
            (proptest::collection::vec(0.0..=1.0f64, 3), -50.0..150.0f64), 3..20),
        split in 1usize..18,
        queries in proptest::collection::vec(proptest::collection::vec(-0.2..=1.2f64, 3), 1..4),
    ) {
        let split = split.min(points.len() - 1).max(1);
        let xs: Vec<Vec<f64>> = points.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
        let kernel = RbfKernel::default();
        let mut inc = Gp::fit(&xs[..split], &ys[..split], kernel).unwrap();
        for (x, &y) in xs[split..].iter().zip(&ys[split..]) {
            inc.extend(x, y).unwrap();
        }
        let full = Gp::fit(&xs, &ys, kernel).unwrap();
        prop_assert_eq!(inc.len(), full.len());
        prop_assert!(
            (inc.log_marginal_likelihood() - full.log_marginal_likelihood()).abs() < 1e-9
        );
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        for q in &queries {
            let (m1, v1) = inc.predict(q);
            let (m2, v2) = full.predict(q);
            prop_assert!((m1 - m2).abs() < 1e-9, "mean {} vs {}", m1, m2);
            prop_assert!((v1 - v2).abs() < 1e-9, "var {} vs {}", v1, v2);
            let e1 = inc.expected_improvement(q, best);
            let e2 = full.expected_improvement(q, best);
            prop_assert!((e1 - e2).abs() < 1e-9, "ei {} vs {}", e1, e2);
        }
    }

    /// The Bayes solver's incremental hot path proposes bit-identically to
    /// the from-scratch reference path on arbitrary histories, with the
    /// same RNG consumption.
    #[test]
    fn bayes_paths_propose_identically(
        history in arb_history(),
        batch in 1usize..8,
        seed in 0u64..500,
    ) {
        let mut fast = BayesSolver::new(4);
        let mut slow = BayesSolver::new(4);
        slow.incremental = false;
        let mut rng_fast = StdRng::seed_from_u64(seed);
        let mut rng_slow = StdRng::seed_from_u64(seed);
        let a = fast.propose(Rgb8::PAPER_TARGET, &history, batch, &mut rng_fast);
        let b = slow.propose(Rgb8::PAPER_TARGET, &history, batch, &mut rng_slow);
        prop_assert_eq!(a, b);
        prop_assert_eq!(rng_fast, rng_slow);
    }

    /// Uniform grids are complete lattices: size and uniqueness.
    #[test]
    fn uniform_grid_is_a_lattice(dims in 1usize..4, per_dim in 1usize..5) {
        let g = uniform_grid(dims, per_dim);
        prop_assert_eq!(g.len(), per_dim.pow(dims as u32));
        let unique: std::collections::HashSet<String> =
            g.iter().map(|p| format!("{p:?}")).collect();
        prop_assert_eq!(unique.len(), g.len());
    }
}
