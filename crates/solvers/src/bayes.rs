//! Bayesian-optimization solver: GP surrogate + expected improvement.
//!
//! Mirrors the paper's scikit-learn-based method (§2.5): a Gaussian-process
//! surrogate over the unit box, with candidates ranked by expected
//! improvement. Batches are diversified with a minimum-distance constraint
//! (a cheap stand-in for constant-liar q-EI).
//!
//! Two implementations of the same math live here, selected by
//! [`BayesSolver::incremental`]:
//!
//! * the **incremental** default keeps one surrogate per `fit_auto`
//!   lengthscale alive across proposals, appends new observations with the
//!   O(n²) [`Gp::extend`], and scores the candidate pool through
//!   [`Gp::ei_batch`] over reusable flat buffers — this is the campaign
//!   hot path;
//! * the **from-scratch** baseline refits via [`Gp::fit_auto`] every call
//!   and scores candidates one `Vec` at a time — the pre-optimization code,
//!   kept because the equivalence tests and the `hotpath` bench compare
//!   the two.
//!
//! Both paths consume the RNG identically and produce bit-identical
//! proposals; the determinism suite enforces this.

use crate::gp::{EiScratch, Gp, RbfKernel, FIT_AUTO_LENGTHSCALES};
use crate::linalg::dist;
use crate::reference::RefGp;
use crate::sampling::latin_hypercube;
use crate::solver::{best_observation, sanitize, ColorSolver, Observation};
use rand::rngs::StdRng;
use rand::Rng;
use sdl_color::Rgb8;

/// One surrogate per candidate lengthscale, grown incrementally alongside
/// the fit window. A `None` entry is a lengthscale whose Cholesky failed;
/// a from-scratch fit of a superset of the same points fails at the same
/// leading row, so dead entries stay dead until the window itself changes.
#[derive(Debug, Clone, Default)]
struct SurrogateCache {
    /// History index of the first window point the cache was built on.
    start: usize,
    /// Window points consumed so far.
    n: usize,
    /// The ratios consumed, flat row-major (for cache validation).
    xs: Vec<f64>,
    /// The scores consumed (for cache validation).
    ys: Vec<f64>,
    /// One model per [`FIT_AUTO_LENGTHSCALES`] entry.
    gps: Vec<Option<Gp>>,
}

/// GP-EI color solver.
#[derive(Debug, Clone)]
pub struct BayesSolver {
    dims: usize,
    /// Observations required before the surrogate takes over from LHS.
    pub init_samples: usize,
    /// Random candidates scored per proposal round.
    pub candidates: usize,
    /// Local perturbations of the incumbent added to the candidate pool.
    pub local_candidates: usize,
    /// Minimum pairwise distance inside one proposed batch.
    pub batch_min_dist: f64,
    /// Cap on history length used for the fit (GP is O(n³)).
    pub max_fit_points: usize,
    /// Use the incremental surrogate + batched-EI hot path (default). Set
    /// to `false` to run the from-scratch reference path; results are
    /// bit-identical either way.
    pub incremental: bool,
    fallbacks: u64,
    cache: SurrogateCache,
    pool: Vec<f64>,
    ei: Vec<f64>,
    order: Vec<usize>,
    ei_scratch: EiScratch,
}

impl BayesSolver {
    /// Default-configured solver for `dims` dyes.
    pub fn new(dims: usize) -> BayesSolver {
        BayesSolver {
            dims,
            init_samples: 2 * dims,
            candidates: 512,
            local_candidates: 128,
            batch_min_dist: 0.05,
            max_fit_points: 160,
            incremental: true,
            fallbacks: 0,
            cache: SurrogateCache::default(),
            pool: Vec::new(),
            ei: Vec::new(),
            order: Vec::new(),
            ei_scratch: EiScratch::default(),
        }
    }

    /// Times a degenerate surrogate fit forced a random-candidate fallback.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Fill `self.pool` with the candidate pool, flat row-major. Draws from
    /// the RNG in exactly the order the original `Vec<Vec<f64>>` pool did:
    /// all uniform candidates first, then the incumbent perturbations.
    fn fill_candidate_pool(&mut self, incumbent: &[f64], rng: &mut StdRng) -> usize {
        let m = self.candidates + self.local_candidates;
        self.pool.clear();
        self.pool.reserve(m * self.dims);
        for _ in 0..self.candidates {
            for _ in 0..self.dims {
                self.pool.push(rng.gen::<f64>());
            }
        }
        for i in 0..self.local_candidates {
            // Shrinking shells around the incumbent.
            let radius = 0.02 + 0.2 * (i as f64 / self.local_candidates.max(1) as f64);
            let at = self.pool.len();
            for x in incumbent {
                self.pool.push(x + rng.gen_range(-radius..=radius));
            }
            sanitize(&mut self.pool[at..]);
        }
        m
    }

    /// The reference candidate pool (from-scratch path).
    fn candidate_pool(&self, incumbent: &[f64], rng: &mut StdRng) -> Vec<Vec<f64>> {
        let mut pool = Vec::with_capacity(self.candidates + self.local_candidates);
        for _ in 0..self.candidates {
            pool.push((0..self.dims).map(|_| rng.gen::<f64>()).collect());
        }
        for i in 0..self.local_candidates {
            let radius = 0.02 + 0.2 * (i as f64 / self.local_candidates.max(1) as f64);
            let mut p: Vec<f64> =
                incumbent.iter().map(|x| x + rng.gen_range(-radius..=radius)).collect();
            sanitize(&mut p);
            pool.push(p);
        }
        pool
    }

    /// Random fallback batch (degenerate fit). Same RNG order in both paths.
    fn random_batch(&mut self, batch: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        self.fallbacks += 1;
        (0..batch).map(|_| (0..self.dims).map(|_| rng.gen::<f64>()).collect()).collect()
    }

    /// True when the cache was built on a prefix of this window.
    fn cache_matches(&self, start: usize, window: &[Observation]) -> bool {
        if self.cache.gps.is_empty() || self.cache.start != start || self.cache.n > window.len() {
            return false;
        }
        for (i, o) in window[..self.cache.n].iter().enumerate() {
            if o.ratios.len() != self.dims
                || self.cache.ys[i] != o.score
                || self.cache.xs[i * self.dims..(i + 1) * self.dims] != o.ratios[..]
            {
                return false;
            }
        }
        true
    }

    /// Bring the per-lengthscale surrogates up to date with the fit window,
    /// extending incrementally when the window only grew and refitting from
    /// scratch when it slid or the history was rewritten. Returns the index
    /// of the evidence-maximizing live surrogate (the same selection
    /// `Gp::fit_auto` makes), or `None` when every lengthscale is
    /// degenerate.
    fn refresh_surrogates(&mut self, start: usize, window: &[Observation]) -> Option<usize> {
        if !self.cache_matches(start, window) {
            self.cache = SurrogateCache {
                start,
                n: 0,
                xs: Vec::with_capacity(window.len() * self.dims),
                ys: Vec::with_capacity(window.len()),
                gps: vec![None; FIT_AUTO_LENGTHSCALES.len()],
            };
            let xs: Vec<Vec<f64>> = window.iter().map(|o| o.ratios.clone()).collect();
            let ys: Vec<f64> = window.iter().map(|o| o.score).collect();
            for (slot, &l) in self.cache.gps.iter_mut().zip(&FIT_AUTO_LENGTHSCALES) {
                let k = RbfKernel { lengthscale: l, ..RbfKernel::default() };
                *slot = Gp::fit(&xs, &ys, k).ok();
            }
        } else {
            let fresh = &window[self.cache.n..];
            for slot in &mut self.cache.gps {
                if let Some(gp) = slot {
                    let points = fresh.iter().map(|o| (o.ratios.as_slice(), o.score));
                    if gp.extend_many(points).is_err() {
                        *slot = None;
                    }
                }
            }
        }
        self.cache.n = window.len();
        self.cache.xs.clear();
        self.cache.ys.clear();
        for o in window {
            self.cache.xs.extend_from_slice(&o.ratios);
            self.cache.ys.push(o.score);
        }

        // Evidence-maximizing lengthscale, first-wins on ties — the exact
        // selection rule of Gp::fit_auto.
        let mut best: Option<usize> = None;
        for (i, slot) in self.cache.gps.iter().enumerate() {
            if let Some(gp) = slot {
                if best.is_none_or(|b| {
                    gp.log_marginal_likelihood()
                        > self.cache.gps[b].as_ref().expect("live").log_marginal_likelihood()
                }) {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Greedy diverse batch from EI-ranked flat candidates, plus random
    /// fill and sanitation — the shared tail of both propose paths.
    fn select_batch(&mut self, m: usize, batch: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        self.order.clear();
        self.order.extend(0..m);
        let ei = &self.ei;
        // Stable sort: candidates with equal EI keep pool order, exactly as
        // the reference path's stable sort over (score, point) pairs.
        self.order.sort_by(|&a, &b| ei[b].total_cmp(&ei[a]));

        let mut out: Vec<Vec<f64>> = Vec::with_capacity(batch);
        for &c in &self.order {
            if out.len() == batch {
                break;
            }
            let p = &self.pool[c * self.dims..(c + 1) * self.dims];
            if out.iter().all(|q| dist(q, p) >= self.batch_min_dist) {
                out.push(p.to_vec());
            }
        }
        while out.len() < batch {
            out.push((0..self.dims).map(|_| rng.gen::<f64>()).collect());
        }
        for p in &mut out {
            sanitize(p);
        }
        out
    }

    /// The pre-optimization propose body: from-scratch `fit_auto` and
    /// one-candidate-at-a-time EI over freshly allocated `Vec`s.
    fn propose_from_scratch(
        &mut self,
        window: &[Observation],
        incumbent: &[f64],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        let xs: Vec<Vec<f64>> = window.iter().map(|o| o.ratios.clone()).collect();
        let ys: Vec<f64> = window.iter().map(|o| o.score).collect();
        let gp = match RefGp::fit_auto(&xs, &ys) {
            Ok(gp) => gp,
            Err(_) => return self.random_batch(batch, rng),
        };
        let best_y = ys.iter().cloned().fold(f64::INFINITY, f64::min);

        let mut scored: Vec<(f64, Vec<f64>)> = self
            .candidate_pool(incumbent, rng)
            .into_iter()
            .map(|p| (gp.expected_improvement(&p, best_y), p))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));

        // Greedy batch with diversity.
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(batch);
        for (_, p) in &scored {
            if out.len() == batch {
                break;
            }
            if out.iter().all(|q| dist(q, p) >= self.batch_min_dist) {
                out.push(p.clone());
            }
        }
        // Fill any shortfall with random points.
        while out.len() < batch {
            out.push((0..self.dims).map(|_| rng.gen::<f64>()).collect());
        }
        for p in &mut out {
            sanitize(p);
        }
        out
    }
}

impl ColorSolver for BayesSolver {
    fn name(&self) -> &'static str {
        "bayesian"
    }

    fn degenerate_fallbacks(&self) -> u64 {
        self.fallbacks
    }

    fn propose(
        &mut self,
        _target: Rgb8,
        history: &[Observation],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        assert!(batch > 0);
        if history.len() < self.init_samples {
            return latin_hypercube(self.dims, batch, rng);
        }
        // Both paths must fail identically on malformed input, so check
        // arity up front instead of letting the incremental path trip an
        // internal assertion the reference path would sail past.
        assert!(
            history.iter().all(|o| o.ratios.len() == self.dims),
            "history observations must have {} ratios",
            self.dims
        );

        // Fit on the most recent window (plus the incumbent is inside it in
        // practice; scores are noisy so recency is a feature, not a bug).
        let start = history.len().saturating_sub(self.max_fit_points);
        let window = &history[start..];
        let incumbent = best_observation(history).expect("non-empty").ratios.clone();

        if !self.incremental {
            return self.propose_from_scratch(window, &incumbent, batch, rng);
        }

        let Some(best_gp) = self.refresh_surrogates(start, window) else {
            // Degenerate fit (e.g. non-finite points): fall back to random.
            return self.random_batch(batch, rng);
        };
        let best_y = window.iter().map(|o| o.score).fold(f64::INFINITY, f64::min);

        let m = self.fill_candidate_pool(&incumbent, rng);
        let gp = self.cache.gps[best_gp].as_ref().expect("live surrogate");
        gp.ei_batch(&self.pool, m, best_y, &mut self.ei_scratch, &mut self.ei);
        self.select_batch(m, batch, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn obs(ratios: Vec<f64>, score: f64) -> Observation {
        Observation { ratios, measured: Rgb8::new(0, 0, 0), score }
    }

    #[test]
    fn warms_up_with_latin_hypercube() {
        let mut s = BayesSolver::new(4);
        let props = s.propose(Rgb8::PAPER_TARGET, &[], 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(props.len(), 4);
        for p in &props {
            assert_eq!(p.len(), 4);
        }
    }

    #[test]
    fn warmup_batch_of_one_returns_exactly_one_point() {
        // Regression: the warm-up used to over-sample via batch.max(1) and
        // truncate; it must hand back exactly the requested batch.
        for batch in [1usize, 2, 7] {
            let mut s = BayesSolver::new(3);
            let props = s.propose(Rgb8::PAPER_TARGET, &[], batch, &mut StdRng::seed_from_u64(9));
            assert_eq!(props.len(), batch);
            for p in &props {
                assert_eq!(p.len(), 3);
                assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn batch_respects_diversity() {
        let mut s = BayesSolver::new(2);
        s.init_samples = 4;
        let history: Vec<Observation> = (0..12)
            .map(|i| {
                let x = (i % 4) as f64 / 3.0;
                let y = (i / 4) as f64 / 2.0;
                obs(vec![x, y], ((x - 0.3).powi(2) + (y - 0.6).powi(2)) * 100.0)
            })
            .collect();
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 6, &mut StdRng::seed_from_u64(2));
        assert_eq!(props.len(), 6);
        for i in 0..props.len() {
            for j in i + 1..props.len() {
                assert!(
                    dist(&props[i], &props[j]) >= s.batch_min_dist * 0.99,
                    "batch points too close: {:?} vs {:?}",
                    props[i],
                    props[j]
                );
            }
        }
    }

    #[test]
    fn converges_on_a_synthetic_objective() {
        let hidden = [0.18, 0.16, 0.16, 0.62];
        let mut s = BayesSolver::new(4);
        let mut history: Vec<Observation> = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let batch = s.propose(Rgb8::PAPER_TARGET, &history, 4, &mut rng);
            for p in batch {
                let score: f64 =
                    p.iter().zip(&hidden).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
                        * 100.0;
                history.push(obs(p, score));
            }
        }
        let best = best_observation(&history).unwrap().score;
        assert!(best < 10.0, "BO failed to converge: best {best}");
    }

    #[test]
    fn duplicate_history_does_not_crash() {
        let mut s = BayesSolver::new(3);
        s.init_samples = 2;
        let history = vec![obs(vec![0.5, 0.5, 0.5], 10.0); 8];
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 3, &mut StdRng::seed_from_u64(4));
        assert_eq!(props.len(), 3);
        // Duplicate points are *not* degenerate for this kernel (the noise
        // term keeps K positive definite), so no fallback is recorded…
        assert_eq!(s.fallbacks(), 0);
    }

    #[test]
    fn degenerate_fit_falls_back_and_is_counted() {
        // …but non-finite history poisons every lengthscale's Cholesky, and
        // each such propose must fall back to random candidates and count it.
        let mut s = BayesSolver::new(3);
        s.init_samples = 2;
        let mut history = vec![obs(vec![0.5, 0.5, 0.5], 10.0); 4];
        history.push(obs(vec![f64::NAN, 0.5, 0.5], 11.0));
        let mut rng = StdRng::seed_from_u64(5);
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 3, &mut rng);
        assert_eq!(props.len(), 3);
        assert_eq!(s.fallbacks(), 1);
        assert_eq!(s.degenerate_fallbacks(), 1);
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 2, &mut rng);
        assert_eq!(props.len(), 2);
        assert_eq!(s.fallbacks(), 2);
        // The from-scratch path counts identically.
        let mut s = BayesSolver::new(3);
        s.init_samples = 2;
        s.incremental = false;
        s.propose(Rgb8::PAPER_TARGET, &history, 3, &mut StdRng::seed_from_u64(5));
        assert_eq!(s.degenerate_fallbacks(), 1);
    }

    #[test]
    fn incremental_and_from_scratch_paths_agree_bitwise() {
        // Grow a history across many proposes (crossing the sliding-window
        // boundary) and check the hot path reproduces the reference path's
        // proposals exactly, call by call.
        let hidden = [0.3, 0.6, 0.2];
        let mut fast = BayesSolver::new(3);
        fast.max_fit_points = 24;
        let mut slow = fast.clone();
        slow.incremental = false;
        let mut history: Vec<Observation> = Vec::new();
        let mut rng_fast = StdRng::seed_from_u64(11);
        let mut rng_slow = StdRng::seed_from_u64(11);
        for round in 0..12 {
            let a = fast.propose(Rgb8::PAPER_TARGET, &history, 3, &mut rng_fast);
            let b = slow.propose(Rgb8::PAPER_TARGET, &history, 3, &mut rng_slow);
            assert_eq!(a, b, "round {round} diverged");
            assert_eq!(rng_fast, rng_slow, "round {round}: RNG streams diverged");
            for p in a {
                let score: f64 =
                    p.iter().zip(&hidden).map(|(x, h)| (x - h) * (x - h)).sum::<f64>().sqrt();
                history.push(obs(p, score * 100.0));
            }
        }
        assert!(history.len() > fast.max_fit_points, "window must have slid");
    }

    #[test]
    fn cache_survives_history_rewrites() {
        // Feeding a *different* history (same length) must not reuse stale
        // surrogates: the proposals must match a fresh solver's.
        let mk_history = |offset: f64| -> Vec<Observation> {
            (0..10)
                .map(|i| {
                    let x = (i as f64 / 9.0 + offset).fract();
                    obs(vec![x, 1.0 - x], (x - 0.4).abs() * 50.0)
                })
                .collect()
        };
        let mut warm = BayesSolver::new(2);
        warm.init_samples = 4;
        let _ =
            warm.propose(Rgb8::PAPER_TARGET, &mk_history(0.0), 2, &mut StdRng::seed_from_u64(3));
        let rewritten = mk_history(0.31);
        let warm_props =
            warm.propose(Rgb8::PAPER_TARGET, &rewritten, 2, &mut StdRng::seed_from_u64(4));
        let mut cold = BayesSolver::new(2);
        cold.init_samples = 4;
        let cold_props =
            cold.propose(Rgb8::PAPER_TARGET, &rewritten, 2, &mut StdRng::seed_from_u64(4));
        assert_eq!(warm_props, cold_props);
    }
}
