//! Bayesian-optimization solver: GP surrogate + expected improvement.
//!
//! Mirrors the paper's scikit-learn-based method (§2.5): a Gaussian-process
//! surrogate over the unit box, refit each iteration, with candidates ranked
//! by expected improvement. Batches are diversified with a minimum-distance
//! constraint (a cheap stand-in for constant-liar q-EI).

use crate::gp::Gp;
use crate::linalg::dist;
use crate::sampling::latin_hypercube;
use crate::solver::{best_observation, sanitize, ColorSolver, Observation};
use rand::rngs::StdRng;
use rand::Rng;
use sdl_color::Rgb8;

/// GP-EI color solver.
#[derive(Debug, Clone)]
pub struct BayesSolver {
    dims: usize,
    /// Observations required before the surrogate takes over from LHS.
    pub init_samples: usize,
    /// Random candidates scored per proposal round.
    pub candidates: usize,
    /// Local perturbations of the incumbent added to the candidate pool.
    pub local_candidates: usize,
    /// Minimum pairwise distance inside one proposed batch.
    pub batch_min_dist: f64,
    /// Cap on history length used for the fit (GP is O(n³)).
    pub max_fit_points: usize,
}

impl BayesSolver {
    /// Default-configured solver for `dims` dyes.
    pub fn new(dims: usize) -> BayesSolver {
        BayesSolver {
            dims,
            init_samples: 2 * dims,
            candidates: 512,
            local_candidates: 128,
            batch_min_dist: 0.05,
            max_fit_points: 160,
        }
    }

    fn candidate_pool(&self, incumbent: &[f64], rng: &mut StdRng) -> Vec<Vec<f64>> {
        let mut pool = Vec::with_capacity(self.candidates + self.local_candidates);
        for _ in 0..self.candidates {
            pool.push((0..self.dims).map(|_| rng.gen::<f64>()).collect());
        }
        for i in 0..self.local_candidates {
            // Shrinking shells around the incumbent.
            let radius = 0.02 + 0.2 * (i as f64 / self.local_candidates.max(1) as f64);
            let mut p: Vec<f64> =
                incumbent.iter().map(|x| x + rng.gen_range(-radius..=radius)).collect();
            sanitize(&mut p);
            pool.push(p);
        }
        pool
    }
}

impl ColorSolver for BayesSolver {
    fn name(&self) -> &'static str {
        "bayesian"
    }

    fn propose(
        &mut self,
        _target: Rgb8,
        history: &[Observation],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        assert!(batch > 0);
        if history.len() < self.init_samples {
            let n = batch.max(1);
            let mut pts = latin_hypercube(self.dims, n, rng);
            pts.truncate(batch);
            return pts;
        }

        // Fit on the most recent window (plus the incumbent is inside it in
        // practice; scores are noisy so recency is a feature, not a bug).
        let start = history.len().saturating_sub(self.max_fit_points);
        let window = &history[start..];
        let xs: Vec<Vec<f64>> = window.iter().map(|o| o.ratios.clone()).collect();
        let ys: Vec<f64> = window.iter().map(|o| o.score).collect();
        let incumbent = best_observation(history).expect("non-empty").ratios.clone();

        let gp = match Gp::fit_auto(&xs, &ys) {
            Ok(gp) => gp,
            Err(_) => {
                // Degenerate fit (duplicate points): fall back to random.
                return (0..batch)
                    .map(|_| (0..self.dims).map(|_| rng.gen::<f64>()).collect())
                    .collect();
            }
        };
        let best_y = ys.iter().cloned().fold(f64::INFINITY, f64::min);

        let mut scored: Vec<(f64, Vec<f64>)> = self
            .candidate_pool(&incumbent, rng)
            .into_iter()
            .map(|p| (gp.expected_improvement(&p, best_y), p))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));

        // Greedy batch with diversity.
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(batch);
        for (_, p) in &scored {
            if out.len() == batch {
                break;
            }
            if out.iter().all(|q| dist(q, p) >= self.batch_min_dist) {
                out.push(p.clone());
            }
        }
        // Fill any shortfall with random points.
        while out.len() < batch {
            out.push((0..self.dims).map(|_| rng.gen::<f64>()).collect());
        }
        for p in &mut out {
            sanitize(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn obs(ratios: Vec<f64>, score: f64) -> Observation {
        Observation { ratios, measured: Rgb8::new(0, 0, 0), score }
    }

    #[test]
    fn warms_up_with_latin_hypercube() {
        let mut s = BayesSolver::new(4);
        let props = s.propose(Rgb8::PAPER_TARGET, &[], 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(props.len(), 4);
        for p in &props {
            assert_eq!(p.len(), 4);
        }
    }

    #[test]
    fn batch_respects_diversity() {
        let mut s = BayesSolver::new(2);
        s.init_samples = 4;
        let history: Vec<Observation> = (0..12)
            .map(|i| {
                let x = (i % 4) as f64 / 3.0;
                let y = (i / 4) as f64 / 2.0;
                obs(vec![x, y], ((x - 0.3).powi(2) + (y - 0.6).powi(2)) * 100.0)
            })
            .collect();
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 6, &mut StdRng::seed_from_u64(2));
        assert_eq!(props.len(), 6);
        for i in 0..props.len() {
            for j in i + 1..props.len() {
                assert!(
                    dist(&props[i], &props[j]) >= s.batch_min_dist * 0.99,
                    "batch points too close: {:?} vs {:?}",
                    props[i],
                    props[j]
                );
            }
        }
    }

    #[test]
    fn converges_on_a_synthetic_objective() {
        let hidden = [0.18, 0.16, 0.16, 0.62];
        let mut s = BayesSolver::new(4);
        let mut history: Vec<Observation> = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let batch = s.propose(Rgb8::PAPER_TARGET, &history, 4, &mut rng);
            for p in batch {
                let score: f64 =
                    p.iter().zip(&hidden).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
                        * 100.0;
                history.push(obs(p, score));
            }
        }
        let best = best_observation(&history).unwrap().score;
        assert!(best < 10.0, "BO failed to converge: best {best}");
    }

    #[test]
    fn duplicate_history_does_not_crash() {
        let mut s = BayesSolver::new(3);
        s.init_samples = 2;
        let history = vec![obs(vec![0.5, 0.5, 0.5], 10.0); 8];
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 3, &mut StdRng::seed_from_u64(4));
        assert_eq!(props.len(), 3);
    }
}
