//! The paper's evolutionary solver (§2.5), reimplemented faithfully:
//!
//! * the initial population is "sampled from a uniform grid of proper
//!   dimensions (corresponding to the number of mixing colors)";
//! * each generation, "the most accurate element of the previous population
//!   is propagated into the new generation";
//! * "one third of the new population is created by randomly selecting two
//!   elements of the previous population and taking the average of them";
//! * "one third … by taking a random element of the previous population and
//!   randomly shifting its ratios";
//! * "the final third … by randomly creating a new set of ratios".
//!
//! Because batch sizes below four cannot hold an elite plus three thirds,
//! small batches degenerate gracefully: B = 1 proposes a mutation of the
//! best-so-far (re-measuring the elite every iteration would waste the
//! sample budget), alternating with crossover and fresh random points.

use crate::sampling::grid_sample;
use crate::solver::{best_observation, sanitize, ColorSolver, Observation};
use rand::rngs::StdRng;
use rand::Rng;
use sdl_color::Rgb8;

/// Evolutionary color solver.
#[derive(Debug, Clone)]
pub struct GeneticSolver {
    dims: usize,
    /// Grid levels per dimension for the initial population.
    pub grid_levels: usize,
    /// Half-width of the uniform mutation shift.
    pub mutation_shift: f64,
    /// How many recent observations form the "previous population".
    pub population_window: usize,
    /// Re-measure the elite each generation, as the paper specifies ("the
    /// most accurate element of the previous population is propagated into
    /// the new generation"). Disabling it spends that sample on an extra
    /// mutation instead (the GA batch-strategy ablation; see `sdl-bench`’s `ablation_ga`).
    pub elite_replication: bool,
    generation: u64,
}

impl GeneticSolver {
    /// Default-configured solver for `dims` dyes.
    pub fn new(dims: usize) -> GeneticSolver {
        GeneticSolver {
            dims,
            grid_levels: 4,
            mutation_shift: 0.15,
            population_window: 16,
            elite_replication: true,
            generation: 0,
        }
    }

    /// The parent pool: the most recent window of observations, plus the
    /// global elite (which may be older).
    fn parents<'a>(&self, history: &'a [Observation]) -> Vec<&'a Observation> {
        let start = history.len().saturating_sub(self.population_window);
        let mut pool: Vec<&Observation> = history[start..].iter().collect();
        if let Some(best) = best_observation(history) {
            if !pool.iter().any(|o| std::ptr::eq(*o, best)) {
                pool.push(best);
            }
        }
        pool
    }

    fn crossover(&self, pool: &[&Observation], rng: &mut StdRng) -> Vec<f64> {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        a.ratios.iter().zip(&b.ratios).map(|(x, y)| (x + y) / 2.0).collect()
    }

    fn mutate(&self, pool: &[&Observation], rng: &mut StdRng) -> Vec<f64> {
        let p = pool[rng.gen_range(0..pool.len())];
        p.ratios
            .iter()
            .map(|x| x + rng.gen_range(-self.mutation_shift..=self.mutation_shift))
            .collect()
    }

    fn fresh(&self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.dims).map(|_| rng.gen::<f64>()).collect()
    }
}

impl ColorSolver for GeneticSolver {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn propose(
        &mut self,
        _target: Rgb8,
        history: &[Observation],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        assert!(batch > 0);
        self.generation += 1;

        // Initial population from the uniform grid.
        if history.is_empty() {
            return grid_sample(self.dims, self.grid_levels, batch, rng);
        }

        let pool = self.parents(history);
        let elite = best_observation(history).expect("non-empty history");
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(batch);

        if batch >= 4 {
            // Faithful scheme: elite + thirds. With replication disabled the
            // elite's slot becomes one more mutation of it.
            if self.elite_replication {
                out.push(elite.ratios.clone());
            } else {
                let mutated: Vec<f64> = elite
                    .ratios
                    .iter()
                    .map(|x| x + rng.gen_range(-self.mutation_shift..=self.mutation_shift) * 0.5)
                    .collect();
                out.push(mutated);
            }
            let rest = batch - 1;
            let third = rest / 3;
            let n_cross = third;
            let n_mut = third;
            let n_rand = rest - 2 * third;
            for _ in 0..n_cross {
                out.push(self.crossover(&pool, rng));
            }
            for _ in 0..n_mut {
                out.push(self.mutate(&pool, rng));
            }
            for _ in 0..n_rand {
                out.push(self.fresh(rng));
            }
        } else {
            // Degenerate small batches: rotate mutation / crossover / random,
            // always anchored on the elite's neighborhood.
            for i in 0..batch {
                let choice = (self.generation as usize + i) % 3;
                let mut p: Vec<f64> = match choice {
                    0 => {
                        // Mutate the elite.
                        elite
                            .ratios
                            .iter()
                            .map(|x| x + rng.gen_range(-self.mutation_shift..=self.mutation_shift))
                            .collect()
                    }
                    1 => self.crossover(&pool, rng),
                    _ => self.fresh(rng),
                };
                // Tiny pools can crossover the elite with itself; nudge so a
                // one-sample batch never burns its budget re-measuring it.
                if p == elite.ratios {
                    for v in p.iter_mut() {
                        *v += rng.gen_range(-self.mutation_shift..=self.mutation_shift) * 0.5;
                    }
                }
                out.push(p);
            }
        }

        for p in &mut out {
            sanitize(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn obs(ratios: Vec<f64>, score: f64) -> Observation {
        Observation { ratios, measured: Rgb8::new(0, 0, 0), score }
    }

    #[test]
    fn initial_population_comes_from_grid() {
        let mut ga = GeneticSolver::new(4);
        let props = ga.propose(Rgb8::PAPER_TARGET, &[], 8, &mut rng());
        assert_eq!(props.len(), 8);
        for p in &props {
            assert_eq!(p.len(), 4);
            for &v in p {
                // Grid levels for 4 levels: 0, 1/3, 2/3, 1.
                let on_grid = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0].iter().any(|l| (v - l).abs() < 1e-9);
                assert!(on_grid, "{v} not on grid");
            }
        }
    }

    #[test]
    fn large_batch_contains_elite_and_thirds() {
        let mut ga = GeneticSolver::new(4);
        let history = vec![
            obs(vec![0.2, 0.2, 0.2, 0.6], 5.0),
            obs(vec![0.8, 0.1, 0.3, 0.4], 25.0),
            obs(vec![0.5, 0.5, 0.5, 0.5], 40.0),
        ];
        let props = ga.propose(Rgb8::PAPER_TARGET, &history, 16, &mut rng());
        assert_eq!(props.len(), 16);
        // Elite propagated verbatim.
        assert_eq!(props[0], vec![0.2, 0.2, 0.2, 0.6]);
        // Everything in the unit box.
        for p in &props {
            for &v in p {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn small_batches_never_return_plain_elite() {
        let mut ga = GeneticSolver::new(4);
        let history = vec![obs(vec![0.2, 0.2, 0.2, 0.6], 5.0), obs(vec![0.9, 0.9, 0.9, 0.9], 80.0)];
        let mut r = rng();
        for _ in 0..12 {
            let props = ga.propose(Rgb8::PAPER_TARGET, &history, 1, &mut r);
            assert_eq!(props.len(), 1);
            assert_ne!(props[0], history[0].ratios, "B=1 must not re-measure the elite");
        }
    }

    #[test]
    fn converges_on_a_synthetic_objective() {
        // Minimize distance to a hidden point under the solver loop.
        let hidden = [0.18, 0.16, 0.16, 0.62];
        let mut ga = GeneticSolver::new(4);
        let mut history: Vec<Observation> = Vec::new();
        let mut r = rng();
        for _ in 0..60 {
            let batch = ga.propose(Rgb8::PAPER_TARGET, &history, 4, &mut r);
            for p in batch {
                let score: f64 =
                    p.iter().zip(&hidden).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
                        * 100.0;
                history.push(obs(p, score));
            }
        }
        let best = best_observation(&history).unwrap().score;
        assert!(best < 12.0, "GA failed to converge: best {best}");
    }

    #[test]
    fn elite_replication_can_be_disabled() {
        let mut ga = GeneticSolver::new(4);
        ga.elite_replication = false;
        let history = vec![obs(vec![0.2, 0.2, 0.2, 0.6], 5.0), obs(vec![0.8, 0.8, 0.8, 0.8], 60.0)];
        let props = ga.propose(Rgb8::PAPER_TARGET, &history, 8, &mut rng());
        assert_ne!(props[0], history[0].ratios, "slot 0 must not repeat the elite");
        // But it stays near the elite.
        let d: f64 = props[0]
            .iter()
            .zip(&history[0].ratios)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(d < 0.2, "stray {d}");
    }

    #[test]
    fn proposals_are_deterministic_per_seed() {
        let history = vec![obs(vec![0.3, 0.3, 0.3, 0.3], 10.0)];
        let a = GeneticSolver::new(4).propose(
            Rgb8::PAPER_TARGET,
            &history,
            8,
            &mut StdRng::seed_from_u64(3),
        );
        let b = GeneticSolver::new(4).propose(
            Rgb8::PAPER_TARGET,
            &history,
            8,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }
}
