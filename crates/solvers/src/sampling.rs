//! Initial-design sampling: uniform grids and Latin hypercubes.

use rand::seq::SliceRandom;
use rand::Rng;

/// Points of a uniform grid with `per_dim` levels per dimension, in
/// lexicographic order. The paper's GA seeds its initial population from
/// "a uniform grid of proper dimensions" (§2.5).
pub fn uniform_grid(dims: usize, per_dim: usize) -> Vec<Vec<f64>> {
    assert!(dims > 0 && per_dim > 0);
    let levels: Vec<f64> = if per_dim == 1 {
        vec![0.5]
    } else {
        (0..per_dim).map(|i| i as f64 / (per_dim - 1) as f64).collect()
    };
    let total = per_dim.pow(dims as u32);
    let mut out = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut point = Vec::with_capacity(dims);
        for _ in 0..dims {
            point.push(levels[idx % per_dim]);
            idx /= per_dim;
        }
        out.push(point);
    }
    out
}

/// `n` random draws from the grid (without replacement while possible).
pub fn grid_sample(dims: usize, per_dim: usize, n: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    let mut grid = uniform_grid(dims, per_dim);
    grid.shuffle(rng);
    if n <= grid.len() {
        grid.truncate(n);
        grid
    } else {
        // Not enough grid nodes: repeat draws with replacement.
        let mut out = grid.clone();
        while out.len() < n {
            out.push(grid[rng.gen_range(0..grid.len())].clone());
        }
        out
    }
}

/// Latin hypercube sample of `n` points in `[0,1]^dims`.
pub fn latin_hypercube(dims: usize, n: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    assert!(dims > 0 && n > 0);
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let mut cells: Vec<usize> = (0..n).collect();
        cells.shuffle(rng);
        columns.push(cells.into_iter().map(|c| (c as f64 + rng.gen::<f64>()) / n as f64).collect());
    }
    (0..n).map(|i| columns.iter().map(|col| col[i]).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_has_expected_size_and_bounds() {
        let g = uniform_grid(4, 3);
        assert_eq!(g.len(), 81);
        for p in &g {
            assert_eq!(p.len(), 4);
            for &v in p {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // Corners present.
        assert!(g.contains(&vec![0.0, 0.0, 0.0, 0.0]));
        assert!(g.contains(&vec![1.0, 1.0, 1.0, 1.0]));
    }

    #[test]
    fn single_level_grid_is_centered() {
        assert_eq!(uniform_grid(2, 1), vec![vec![0.5, 0.5]]);
    }

    #[test]
    fn grid_sample_without_replacement_when_possible() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = grid_sample(2, 4, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let unique: std::collections::HashSet<String> =
            s.iter().map(|p| format!("{p:?}")).collect();
        assert_eq!(unique.len(), 10, "sampling should be without replacement");
        // Oversampling falls back to replacement.
        let s = grid_sample(1, 2, 5, &mut rng);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn lhs_stratifies_each_dimension() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 8;
        let s = latin_hypercube(3, n, &mut rng);
        assert_eq!(s.len(), n);
        for d in 0..3 {
            // Exactly one point in each 1/n stratum.
            let mut counts = vec![0usize; n];
            for p in &s {
                let cell = ((p[d] * n as f64) as usize).min(n - 1);
                counts[cell] += 1;
            }
            assert!(counts.iter().all(|&c| c == 1), "dim {d}: {counts:?}");
        }
    }

    #[test]
    fn lhs_is_seeded() {
        let a = latin_hypercube(2, 5, &mut StdRng::seed_from_u64(7));
        let b = latin_hypercube(2, 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
