//! Minimal dense linear algebra for the Gaussian-process solver.
//!
//! Row-major matrices, Cholesky factorization and triangular solves — all
//! the GP needs. Written here because the reproduction avoids external
//! numerics crates (repro note: sparse Rust BO ecosystem).

use std::fmt;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Numerical failure during factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix–vector product into a caller-provided buffer (no allocation).
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Cholesky factorization: returns lower-triangular `L` with
    /// `L Lᵀ = self`. The matrix must be symmetric positive definite.
    pub fn cholesky(&self) -> Result<Matrix, NotPositiveDefinite> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solve `L y = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.solve_lower_into(b, &mut y);
        y
    }

    /// Forward substitution into a caller-provided buffer (no allocation).
    pub fn solve_lower_into(&self, b: &[f64], y: &mut [f64]) {
        let n = self.rows;
        assert_eq!(b.len(), n);
        assert_eq!(y.len(), n);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * y[k];
            }
            y[i] = sum / self[(i, i)];
        }
    }

    /// Solve `Lᵀ x = y` for lower-triangular `L` (back substitution on the
    /// transpose).
    pub fn solve_lower_transpose(&self, y: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(y.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solve `A x = b` via this matrix's Cholesky factor (self must be SPD).
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefinite> {
        let l = self.cholesky()?;
        Ok(l.solve_lower_transpose(&l.solve_lower(b)))
    }

    /// Log-determinant from a Cholesky factor (`self` must be the factor L).
    pub fn log_det_from_cholesky(&self) -> f64 {
        (0..self.rows).map(|i| self[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// A lower-triangular Cholesky factor in packed row storage (row `i` holds
/// `i + 1` entries), built either in one shot or row by row.
///
/// This is the GP hot-path representation: appending an observation is an
/// O(n²) [`CholeskyFactor::extend_row`] instead of an O(n³) refactorization,
/// and the packed layout halves the memory traffic of the triangular solves.
/// All recurrences run in the same order as [`Matrix::cholesky`] /
/// [`Matrix::solve_lower`], so results are bit-identical to the dense path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CholeskyFactor {
    n: usize,
    /// Packed rows: row `i` starts at `i * (i + 1) / 2`.
    data: Vec<f64>,
}

impl CholeskyFactor {
    /// An empty factor (no rows yet).
    pub fn new() -> CholeskyFactor {
        CholeskyFactor::default()
    }

    /// An empty factor with room for `n` rows without reallocation.
    pub fn with_capacity(n: usize) -> CholeskyFactor {
        CholeskyFactor { n: 0, data: Vec::with_capacity(n * (n + 1) / 2) }
    }

    /// Number of rows factored so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no rows have been factored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row `i` of the factor (`i + 1` entries).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * (i + 1) / 2;
        &self.data[start..start + i + 1]
    }

    /// Diagonal entry `L[i][i]`.
    #[inline]
    pub fn diag(&self, i: usize) -> f64 {
        self.data[i * (i + 1) / 2 + i]
    }

    /// Append one row: `k_row` holds the new symmetric matrix row
    /// `[K[n][0], …, K[n][n]]` (covariances against the existing rows plus
    /// the new diagonal). Runs the same recurrence a from-scratch
    /// factorization would run for this row, in the same order, so the grown
    /// factor is bit-identical to refactoring the full matrix. On failure
    /// the factor is left unchanged.
    pub fn extend_row(&mut self, k_row: &[f64]) -> Result<(), NotPositiveDefinite> {
        let n = self.n;
        assert_eq!(k_row.len(), n + 1);
        let start = self.data.len();
        // New off-diagonal entries by forward substitution against the
        // existing rows; identical arithmetic to Matrix::cholesky's
        // `sum -= l[(i, k)] * l[(j, k)]` inner loop.
        for (j, &kj) in k_row[..n].iter().enumerate() {
            let row_j = j * (j + 1) / 2;
            let mut sum = kj;
            for k in 0..j {
                sum -= self.data[start + k] * self.data[row_j + k];
            }
            self.data.push(sum / self.data[row_j + j]);
        }
        let mut sum = k_row[n];
        for k in 0..n {
            let v = self.data[start + k];
            sum -= v * v;
        }
        if sum <= 0.0 || !sum.is_finite() {
            self.data.truncate(start);
            return Err(NotPositiveDefinite);
        }
        self.data.push(sum.sqrt());
        self.n = n + 1;
        Ok(())
    }

    /// Replace this factor with the lower triangle of a dense square
    /// matrix (a factor produced by [`Matrix::cholesky`]).
    pub fn copy_from_lower(&mut self, m: &Matrix) {
        assert_eq!(m.rows(), m.cols());
        let n = m.rows();
        self.data.clear();
        self.data.reserve(n * (n + 1) / 2);
        for i in 0..n {
            for j in 0..=i {
                self.data.push(m[(i, j)]);
            }
        }
        self.n = n;
    }

    /// Factor a full SPD matrix given as packed lower-triangular rows
    /// (`k[i * (i + 1) / 2 + j] = K[i][j]` for `j <= i`).
    pub fn from_packed_spd(k: &[f64], n: usize) -> Result<CholeskyFactor, NotPositiveDefinite> {
        assert_eq!(k.len(), n * (n + 1) / 2);
        let mut f = CholeskyFactor::with_capacity(n);
        for i in 0..n {
            let start = i * (i + 1) / 2;
            f.extend_row(&k[start..start + i + 1])?;
        }
        Ok(f)
    }

    /// Forward substitution `L y = b` into `y` (no allocation).
    pub fn solve_lower_into(&self, b: &[f64], y: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        assert_eq!(y.len(), n);
        for i in 0..n {
            let row = self.row(i);
            let mut sum = b[i];
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
    }

    /// Back substitution `Lᵀ x = y` into `x` (no allocation).
    pub fn solve_lower_transpose_into(&self, y: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(y.len(), n);
        assert_eq!(x.len(), n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.row(k)[i] * xk;
            }
            x[i] = sum / self.diag(i);
        }
    }

    /// Forward substitution over `cols` right-hand sides at once, in place.
    /// `b` is row-major `n × cols` (row `i` contiguous) and is overwritten
    /// with the solution. Each column sees exactly the single-RHS operation
    /// order — initialize with `b[i]`, subtract `L[i][k]·y[k]` for
    /// ascending `k`, divide by the diagonal — so every column is
    /// bit-identical to [`CholeskyFactor::solve_lower_into`]. Columns are
    /// processed in
    /// register-width tiles with the `k` loop innermost, which keeps each
    /// tile's accumulators out of memory and lets the compiler vectorize
    /// across right-hand sides (no reduction reassociation involved).
    pub fn solve_lower_multi_in_place(&self, b: &mut [f64], cols: usize) {
        const TILE: usize = 64;
        let n = self.n;
        assert_eq!(b.len(), n * cols);
        let mut c0 = 0;
        while c0 < cols {
            let w = TILE.min(cols - c0);
            if w == TILE {
                let mut acc = [0.0f64; TILE];
                for i in 0..n {
                    let row = self.row(i);
                    acc.copy_from_slice(&b[i * cols + c0..i * cols + c0 + TILE]);
                    for (k, &l_ik) in row[..i].iter().enumerate() {
                        let yk = &b[k * cols + c0..k * cols + c0 + TILE];
                        for (a, &y) in acc.iter_mut().zip(yk) {
                            *a -= l_ik * y;
                        }
                    }
                    let d = row[i];
                    for a in acc.iter_mut() {
                        *a /= d;
                    }
                    b[i * cols + c0..i * cols + c0 + TILE].copy_from_slice(&acc);
                }
            } else {
                for i in 0..n {
                    let row = self.row(i);
                    for c in c0..c0 + w {
                        let mut a = b[i * cols + c];
                        for (k, &l_ik) in row[..i].iter().enumerate() {
                            a -= l_ik * b[k * cols + c];
                        }
                        b[i * cols + c] = a / row[i];
                    }
                }
            }
            c0 += w;
        }
    }

    /// Log-determinant of the factored matrix (`2 Σ ln L[i][i]`).
    pub fn log_det(&self) -> f64 {
        (0..self.n).map(|i| self.diag(i).ln()).sum::<f64>() * 2.0
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Euclidean distance between two points.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_fn(2, 2, |r, c| [[4.0, 2.0], [2.0, 3.0]][r][c]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn spd_solve_recovers_solution() {
        let a =
            Matrix::from_fn(3, 3, |r, c| [[6.0, 2.0, 1.0], [2.0, 5.0, 2.0], [1.0, 2.0, 4.0]][r][c]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve_spd(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_is_detected() {
        let a = Matrix::from_fn(2, 2, |r, c| [[1.0, 2.0], [2.0, 1.0]][r][c]);
        assert_eq!(a.cholesky(), Err(NotPositiveDefinite));
    }

    #[test]
    fn identity_solves_trivially() {
        let i = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.solve_spd(&b).unwrap(), b);
        assert_eq!(i.matvec(&b), b);
    }

    #[test]
    fn log_det() {
        let a = Matrix::from_fn(2, 2, |r, c| [[4.0, 0.0], [0.0, 9.0]][r][c]);
        let l = a.cholesky().unwrap();
        assert!((l.log_det_from_cholesky() - (36.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn packed_factor_matches_dense_cholesky() {
        let a =
            Matrix::from_fn(3, 3, |r, c| [[6.0, 2.0, 1.0], [2.0, 5.0, 2.0], [1.0, 2.0, 4.0]][r][c]);
        let dense = a.cholesky().unwrap();
        // Row-by-row growth reproduces the dense factor bit for bit.
        let mut packed = CholeskyFactor::new();
        for i in 0..3 {
            let row: Vec<f64> = (0..=i).map(|j| a[(i, j)]).collect();
            packed.extend_row(&row).unwrap();
        }
        assert_eq!(packed.len(), 3);
        for i in 0..3 {
            for j in 0..=i {
                assert_eq!(packed.row(i)[j].to_bits(), dense[(i, j)].to_bits());
            }
        }
        assert_eq!(packed.log_det().to_bits(), dense.log_det_from_cholesky().to_bits());
        // copy_from_lower and from_packed_spd agree with the grown factor.
        let mut copied = CholeskyFactor::new();
        copied.copy_from_lower(&dense);
        assert_eq!(copied, packed);
        let flat: Vec<f64> =
            (0..3).flat_map(|i| (0..=i).map(move |j| (i, j))).map(|(i, j)| a[(i, j)]).collect();
        assert_eq!(CholeskyFactor::from_packed_spd(&flat, 3).unwrap(), packed);
        // Solves agree with the dense path.
        let b = vec![1.0, -2.0, 0.5];
        let dense_y = dense.solve_lower(&b);
        let mut y = vec![0.0; 3];
        packed.solve_lower_into(&b, &mut y);
        assert_eq!(y, dense_y);
        let mut x = vec![0.0; 3];
        packed.solve_lower_transpose_into(&y, &mut x);
        assert_eq!(x, dense.solve_lower_transpose(&dense_y));
    }

    #[test]
    fn failed_extend_row_leaves_factor_intact() {
        let mut f = CholeskyFactor::with_capacity(2);
        f.extend_row(&[4.0]).unwrap();
        assert_eq!(f.extend_row(&[2.0, f64::NAN]), Err(NotPositiveDefinite));
        assert_eq!(f.extend_row(&[2.0, -3.0]), Err(NotPositiveDefinite));
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
        // Still extendable with a valid row.
        f.extend_row(&[2.0, 3.0]).unwrap();
        assert_eq!(f.len(), 2);
        assert!((f.diag(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multi_rhs_solve_matches_single_rhs_per_column() {
        // 40×40 SPD system, 70 right-hand sides (one full 64-wide tile
        // plus a 6-column remainder, so both branches are exercised).
        let n = 40;
        let cols = 70;
        let a = Matrix::from_fn(n, n, |r, c| {
            let d = (r as f64 - c as f64) * 0.17;
            (-d * d).exp() + if r == c { 0.5 } else { 0.0 }
        });
        let dense = a.cholesky().unwrap();
        let mut packed = CholeskyFactor::new();
        packed.copy_from_lower(&dense);
        let b: Vec<f64> = (0..n * cols).map(|i| ((i % 23) as f64 - 11.0) * 0.3).collect();
        let mut multi = b.clone();
        packed.solve_lower_multi_in_place(&mut multi, cols);
        for c in 0..cols {
            let col: Vec<f64> = (0..n).map(|i| b[i * cols + c]).collect();
            let mut single = vec![0.0; n];
            packed.solve_lower_into(&col, &mut single);
            for i in 0..n {
                assert_eq!(multi[i * cols + c].to_bits(), single[i].to_bits(), "row {i} col {c}");
            }
        }
    }

    #[test]
    fn matvec_and_solve_into_match_allocating_versions() {
        let a =
            Matrix::from_fn(3, 3, |r, c| [[6.0, 2.0, 1.0], [2.0, 5.0, 2.0], [1.0, 2.0, 4.0]][r][c]);
        let x = vec![1.0, -2.0, 3.0];
        let mut out = vec![0.0; 3];
        a.matvec_into(&x, &mut out);
        assert_eq!(out, a.matvec(&x));
        let l = a.cholesky().unwrap();
        let mut y = vec![0.0; 3];
        l.solve_lower_into(&x, &mut y);
        assert_eq!(y, l.solve_lower(&x));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
