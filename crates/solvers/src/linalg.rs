//! Minimal dense linear algebra for the Gaussian-process solver.
//!
//! Row-major matrices, Cholesky factorization and triangular solves — all
//! the GP needs. Written here because the reproduction avoids external
//! numerics crates (repro note: sparse Rust BO ecosystem).

use std::fmt;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Numerical failure during factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Cholesky factorization: returns lower-triangular `L` with
    /// `L Lᵀ = self`. The matrix must be symmetric positive definite.
    pub fn cholesky(&self) -> Result<Matrix, NotPositiveDefinite> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solve `L y = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * y[k];
            }
            y[i] = sum / self[(i, i)];
        }
        y
    }

    /// Solve `Lᵀ x = y` for lower-triangular `L` (back substitution on the
    /// transpose).
    pub fn solve_lower_transpose(&self, y: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(y.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solve `A x = b` via this matrix's Cholesky factor (self must be SPD).
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefinite> {
        let l = self.cholesky()?;
        Ok(l.solve_lower_transpose(&l.solve_lower(b)))
    }

    /// Log-determinant from a Cholesky factor (`self` must be the factor L).
    pub fn log_det_from_cholesky(&self) -> f64 {
        (0..self.rows).map(|i| self[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Euclidean distance between two points.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_fn(2, 2, |r, c| [[4.0, 2.0], [2.0, 3.0]][r][c]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn spd_solve_recovers_solution() {
        let a =
            Matrix::from_fn(3, 3, |r, c| [[6.0, 2.0, 1.0], [2.0, 5.0, 2.0], [1.0, 2.0, 4.0]][r][c]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve_spd(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_is_detected() {
        let a = Matrix::from_fn(2, 2, |r, c| [[1.0, 2.0], [2.0, 1.0]][r][c]);
        assert_eq!(a.cholesky(), Err(NotPositiveDefinite));
    }

    #[test]
    fn identity_solves_trivially() {
        let i = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.solve_spd(&b).unwrap(), b);
        assert_eq!(i.matvec(&b), b);
    }

    #[test]
    fn log_det() {
        let a = Matrix::from_fn(2, 2, |r, c| [[4.0, 0.0], [0.0, 9.0]][r][c]);
        let l = a.cholesky().unwrap();
        assert!((l.log_det_from_cholesky() - (36.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
