//! Uniform random search — the floor any real solver must beat.

use crate::solver::{ColorSolver, Observation};
use rand::rngs::StdRng;
use rand::Rng;
use sdl_color::Rgb8;

/// Random-search baseline.
#[derive(Debug, Clone)]
pub struct RandomSolver {
    dims: usize,
}

impl RandomSolver {
    /// Baseline for `dims` dyes.
    pub fn new(dims: usize) -> RandomSolver {
        RandomSolver { dims }
    }
}

impl ColorSolver for RandomSolver {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(
        &mut self,
        _target: Rgb8,
        _history: &[Observation],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        (0..batch).map(|_| (0..self.dims).map(|_| rng.gen::<f64>()).collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn proposals_fill_the_box() {
        let mut s = RandomSolver::new(4);
        let props = s.propose(Rgb8::PAPER_TARGET, &[], 256, &mut StdRng::seed_from_u64(1));
        assert_eq!(props.len(), 256);
        // Each dimension should span most of [0,1] over 256 draws.
        for d in 0..4 {
            let lo = props.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let hi = props.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
            assert!(lo < 0.1 && hi > 0.9, "dim {d}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn history_is_ignored() {
        let mut s = RandomSolver::new(2);
        let h =
            vec![Observation { ratios: vec![0.5, 0.5], measured: Rgb8::new(1, 2, 3), score: 1.0 }];
        let a = s.propose(Rgb8::PAPER_TARGET, &h, 3, &mut StdRng::seed_from_u64(2));
        let b = s.propose(Rgb8::PAPER_TARGET, &[], 3, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }
}
