//! Gaussian-process regression with an RBF kernel.
//!
//! The paper's second decision procedure is "a Bayesian optimization method
//! based on scikit-learn … [that] leverages a surrogate probabilistic model,
//! commonly Gaussian Processes" (§2.5). This is that surrogate, implemented
//! from scratch on the crate's own Cholesky.

use crate::linalg::{mean, std_dev, Matrix, NotPositiveDefinite};

/// RBF (squared-exponential) kernel hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Lengthscale (in the unit-box input space).
    pub lengthscale: f64,
    /// Signal variance σf².
    pub signal_variance: f64,
    /// Observation noise variance σn².
    pub noise_variance: f64,
}

impl Default for RbfKernel {
    fn default() -> Self {
        RbfKernel { lengthscale: 0.25, signal_variance: 1.0, noise_variance: 0.05 }
    }
}

impl RbfKernel {
    /// k(a, b).
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.signal_variance * (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }
}

/// A fitted Gaussian process (zero-mean on standardized targets).
#[derive(Debug, Clone)]
pub struct Gp {
    kernel: RbfKernel,
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Matrix,
    y_mean: f64,
    y_scale: f64,
    log_marginal: f64,
}

impl Gp {
    /// Fit to inputs `x` (unit box) and targets `y`. Targets are
    /// standardized internally.
    pub fn fit(x: &[Vec<f64>], y: &[f64], kernel: RbfKernel) -> Result<Gp, NotPositiveDefinite> {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "GP needs at least one observation");
        let n = x.len();
        let y_mean = mean(y);
        let y_scale = {
            let s = std_dev(y);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        };
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_scale).collect();

        let k = Matrix::from_fn(n, n, |r, c| {
            kernel.eval(&x[r], &x[c]) + if r == c { kernel.noise_variance } else { 0.0 }
        });
        let chol = k.cholesky()?;
        let alpha = chol.solve_lower_transpose(&chol.solve_lower(&ys));

        // log p(y|X) = -1/2 yᵀα - 1/2 log|K| - n/2 log 2π  (standardized y)
        let fit_term: f64 = -0.5 * ys.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>();
        let log_marginal = fit_term
            - 0.5 * chol.log_det_from_cholesky()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(Gp { kernel, x: x.to_vec(), alpha, chol, y_mean, y_scale, log_marginal })
    }

    /// Fit with a small ML-II grid search over the lengthscale.
    pub fn fit_auto(x: &[Vec<f64>], y: &[f64]) -> Result<Gp, NotPositiveDefinite> {
        let mut best: Option<Gp> = None;
        for &l in &[0.1, 0.18, 0.3, 0.5] {
            let k = RbfKernel { lengthscale: l, ..RbfKernel::default() };
            if let Ok(gp) = Gp::fit(x, y, k) {
                if best.as_ref().is_none_or(|b| gp.log_marginal > b.log_marginal) {
                    best = Some(gp);
                }
            }
        }
        best.ok_or(NotPositiveDefinite)
    }

    /// Posterior mean and variance at `q` (de-standardized).
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let ks: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, q)).collect();
        let mu_std: f64 = ks.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.chol.solve_lower(&ks);
        let var_std = (self.kernel.eval(q, q) + self.kernel.noise_variance
            - v.iter().map(|x| x * x).sum::<f64>())
        .max(1e-12);
        (mu_std * self.y_scale + self.y_mean, var_std * self.y_scale * self.y_scale)
    }

    /// Model evidence of the fit (standardized space).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }

    /// Expected improvement at `q` for minimization against `best_y`.
    pub fn expected_improvement(&self, q: &[f64], best_y: f64) -> f64 {
        let (mu, var) = self.predict(q);
        let sigma = var.sqrt();
        if sigma < 1e-12 {
            return (best_y - mu).max(0.0);
        }
        let z = (best_y - mu) / sigma;
        let (pdf, cdf) = normal_pdf_cdf(z);
        ((best_y - mu) * cdf + sigma * pdf).max(0.0)
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the model holds no data (never constructible via `fit`).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Standard normal pdf and cdf (Abramowitz–Stegun erf approximation).
fn normal_pdf_cdf(z: f64) -> (f64, f64) {
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let cdf = 0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2));
    (pdf, cdf)
}

/// erf via the A&S 7.1.26 polynomial (|ε| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = (x - 0.3)^2 sampled on a grid.
        let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3) * (x[0] - 0.3)).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = toy_data();
        let k = RbfKernel { noise_variance: 1e-6, ..RbfKernel::default() };
        let gp = Gp::fit(&xs, &ys, k).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (mu, _) = gp.predict(x);
            assert!((mu - y).abs() < 0.01, "at {x:?}: {mu} vs {y}");
        }
        assert_eq!(gp.len(), 9);
        assert!(!gp.is_empty());
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = toy_data();
        let gp = Gp::fit(&xs, &ys, RbfKernel::default()).unwrap();
        let (_, var_in) = gp.predict(&[0.5]);
        let (_, var_out) = gp.predict(&[3.0]);
        assert!(var_out > var_in * 2.0, "in {var_in}, out {var_out}");
    }

    #[test]
    fn ei_prefers_promising_regions() {
        let (xs, ys) = toy_data();
        let gp =
            Gp::fit(&xs, &ys, RbfKernel { noise_variance: 1e-4, ..RbfKernel::default() }).unwrap();
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        // EI near the optimum (0.3) should beat EI at the far edge (1.0).
        let ei_opt = gp.expected_improvement(&[0.3], best);
        let ei_edge = gp.expected_improvement(&[0.995], best);
        assert!(ei_opt >= 0.0 && ei_edge >= 0.0);
        let ei_gap = gp.expected_improvement(&[0.30001], best);
        assert!(ei_gap >= ei_edge, "opt {ei_opt} gap {ei_gap} edge {ei_edge}");
    }

    #[test]
    fn auto_fit_picks_reasonable_lengthscale() {
        let (xs, ys) = toy_data();
        let gp = Gp::fit_auto(&xs, &ys).unwrap();
        // A smooth quadratic prefers longer lengthscales over 0.1.
        assert!(gp.kernel.lengthscale >= 0.18, "picked {}", gp.kernel.lengthscale);
    }

    #[test]
    fn constant_targets_do_not_crash() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let ys = vec![2.0; 5];
        let gp = Gp::fit(&xs, &ys, RbfKernel::default()).unwrap();
        let (mu, var) = gp.predict(&[0.5]);
        assert!((mu - 2.0).abs() < 0.3);
        assert!(var.is_finite());
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-4);
    }

    #[test]
    fn multidimensional_inputs() {
        let xs: Vec<Vec<f64>> =
            (0..16).map(|i| vec![(i % 4) as f64 / 3.0, (i / 4) as f64 / 3.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        let gp = Gp::fit_auto(&xs, &ys).unwrap();
        let (mu, _) = gp.predict(&[0.5, 0.5]);
        assert!((mu - 1.5).abs() < 0.2, "predicted {mu}");
    }
}
