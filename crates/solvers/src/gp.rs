//! Gaussian-process regression with an RBF kernel.
//!
//! The paper's second decision procedure is "a Bayesian optimization method
//! based on scikit-learn … [that] leverages a surrogate probabilistic model,
//! commonly Gaussian Processes" (§2.5). This is that surrogate, implemented
//! from scratch on the crate's own Cholesky.
//!
//! The model supports two fitting regimes with bit-identical posteriors:
//! a one-shot [`Gp::fit`], and an incremental [`Gp::extend`] that appends
//! one observation in O(n²) by growing the Cholesky factor one row at a
//! time (the factor rows already computed never change when the matrix
//! gains a row, so the grown factor equals the refactored one bit for bit).

use crate::linalg::{mean, std_dev, CholeskyFactor, NotPositiveDefinite};

/// RBF (squared-exponential) kernel hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Lengthscale (in the unit-box input space).
    pub lengthscale: f64,
    /// Signal variance σf².
    pub signal_variance: f64,
    /// Observation noise variance σn².
    pub noise_variance: f64,
}

impl Default for RbfKernel {
    fn default() -> Self {
        RbfKernel { lengthscale: 0.25, signal_variance: 1.0, noise_variance: 0.05 }
    }
}

/// The lengthscale grid swept by [`Gp::fit_auto`] (ML-II model selection).
pub const FIT_AUTO_LENGTHSCALES: [f64; 4] = [0.1, 0.18, 0.3, 0.5];

impl RbfKernel {
    /// k(a, b).
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.signal_variance * (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }
}

/// A fitted Gaussian process (zero-mean on standardized targets).
#[derive(Debug, Clone)]
pub struct Gp {
    kernel: RbfKernel,
    dims: usize,
    n: usize,
    /// Training inputs, flat row-major (`n × dims`).
    x: Vec<f64>,
    /// Raw (unstandardized) targets.
    y: Vec<f64>,
    /// Standardized targets (recomputed whenever `y` changes).
    ys: Vec<f64>,
    alpha: Vec<f64>,
    chol: CholeskyFactor,
    y_mean: f64,
    y_scale: f64,
    log_marginal: f64,
}

/// Reusable buffers for [`Gp::ei_batch`]; keeping them across proposals
/// removes every per-candidate allocation from the scoring loop.
#[derive(Debug, Clone, Default)]
pub struct EiScratch {
    /// Transposed candidate block (`dims × block`).
    qt: Vec<f64>,
    /// Squared distances for the current kernel row.
    d2: Vec<f64>,
    /// Cross-covariance block (`n × block`), solved in place.
    ks: Vec<f64>,
    /// Standardized posterior means per candidate.
    mu: Vec<f64>,
    /// Residual `Σ vᵢ²` per candidate.
    sumsq: Vec<f64>,
}

/// Candidates processed per [`Gp::ei_batch`] block: big enough to vectorize
/// and amortize the factor traversal, small enough that the solve block
/// (`n × EI_BLOCK` f64s) stays cache-resident at n = 160.
const EI_BLOCK: usize = 64;

impl Gp {
    /// Fit to inputs `x` (unit box) and targets `y`. Targets are
    /// standardized internally.
    pub fn fit(x: &[Vec<f64>], y: &[f64], kernel: RbfKernel) -> Result<Gp, NotPositiveDefinite> {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "GP needs at least one observation");
        let n = x.len();
        let dims = x[0].len();

        let mut flat = Vec::with_capacity(n * dims);
        for xi in x {
            assert_eq!(xi.len(), dims, "ragged input rows");
            flat.extend_from_slice(xi);
        }

        // Packed lower triangle of K, factored row by row (identical
        // arithmetic to factoring the full matrix in one pass).
        let mut chol = CholeskyFactor::with_capacity(n);
        let mut k_row = Vec::with_capacity(n);
        for i in 0..n {
            k_row.clear();
            for j in 0..=i {
                let mut v = kernel.eval(&x[i], &x[j]);
                if i == j {
                    v += kernel.noise_variance;
                }
                k_row.push(v);
            }
            chol.extend_row(&k_row)?;
        }

        let mut gp = Gp {
            kernel,
            dims,
            n,
            x: flat,
            y: y.to_vec(),
            ys: Vec::new(),
            alpha: Vec::new(),
            chol,
            y_mean: 0.0,
            y_scale: 1.0,
            log_marginal: 0.0,
        };
        gp.refresh_posterior();
        Ok(gp)
    }

    /// Fit with a small ML-II grid search over the lengthscale.
    pub fn fit_auto(x: &[Vec<f64>], y: &[f64]) -> Result<Gp, NotPositiveDefinite> {
        let mut best: Option<Gp> = None;
        for &l in &FIT_AUTO_LENGTHSCALES {
            let k = RbfKernel { lengthscale: l, ..RbfKernel::default() };
            if let Ok(gp) = Gp::fit(x, y, k) {
                if best.as_ref().is_none_or(|b| gp.log_marginal > b.log_marginal) {
                    best = Some(gp);
                }
            }
        }
        best.ok_or(NotPositiveDefinite)
    }

    /// Append one observation in O(n²): the Cholesky factor gains one row
    /// (the already-factored rows are unchanged by construction) and the
    /// cached `alpha` / standardization / evidence are refreshed. The
    /// resulting model is bit-identical to a from-scratch [`Gp::fit`] on
    /// the extended data. On failure the model is left unchanged.
    pub fn extend(&mut self, x_new: &[f64], y_new: f64) -> Result<(), NotPositiveDefinite> {
        assert_eq!(x_new.len(), self.dims);
        let n = self.n;
        let mut k_row = Vec::with_capacity(n + 1);
        for j in 0..n {
            k_row.push(self.kernel.eval(self.point(j), x_new));
        }
        k_row.push(self.kernel.eval(x_new, x_new) + self.kernel.noise_variance);
        self.chol.extend_row(&k_row)?;
        self.x.extend_from_slice(x_new);
        self.y.push(y_new);
        self.n = n + 1;
        self.refresh_posterior();
        Ok(())
    }

    /// Append several observations with one posterior refresh at the end —
    /// the campaign loop extends by a whole batch before predicting, and
    /// the intermediate posteriors would be thrown away. The final model is
    /// bit-identical to appending the points one [`Gp::extend`] at a time.
    /// On failure the points before the failing one stay committed (with a
    /// consistent posterior) and the error is returned.
    pub fn extend_many<'a, I>(&mut self, points: I) -> Result<(), NotPositiveDefinite>
    where
        I: IntoIterator<Item = (&'a [f64], f64)>,
    {
        let mut k_row = Vec::new();
        let mut result = Ok(());
        for (x_new, y_new) in points {
            assert_eq!(x_new.len(), self.dims);
            let n = self.n;
            k_row.clear();
            k_row.reserve(n + 1);
            for j in 0..n {
                k_row.push(self.kernel.eval(self.point(j), x_new));
            }
            k_row.push(self.kernel.eval(x_new, x_new) + self.kernel.noise_variance);
            if let Err(e) = self.chol.extend_row(&k_row) {
                result = Err(e);
                break;
            }
            self.x.extend_from_slice(x_new);
            self.y.push(y_new);
            self.n = n + 1;
        }
        self.refresh_posterior();
        result
    }

    /// Recompute standardization, `alpha` and the evidence from the current
    /// factor and targets (O(n²)). Shared by `fit` and `extend` so both
    /// paths run literally the same arithmetic.
    fn refresh_posterior(&mut self) {
        let n = self.n;
        self.y_mean = mean(&self.y);
        self.y_scale = {
            let s = std_dev(&self.y);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        };
        self.ys.clear();
        self.ys.extend(self.y.iter().map(|v| (v - self.y_mean) / self.y_scale));

        self.alpha.resize(n, 0.0);
        let mut tmp = vec![0.0; n];
        self.chol.solve_lower_into(&self.ys, &mut tmp);
        self.chol.solve_lower_transpose_into(&tmp, &mut self.alpha);

        // log p(y|X) = -1/2 yᵀα - 1/2 log|K| - n/2 log 2π  (standardized y)
        let fit_term: f64 = -0.5 * self.ys.iter().zip(&self.alpha).map(|(a, b)| a * b).sum::<f64>();
        self.log_marginal = fit_term
            - 0.5 * self.chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    }

    /// Training input `i` as a slice.
    #[inline]
    fn point(&self, i: usize) -> &[f64] {
        &self.x[i * self.dims..(i + 1) * self.dims]
    }

    /// The kernel in use.
    pub fn kernel(&self) -> RbfKernel {
        self.kernel
    }

    /// Raw targets seen so far (fit order).
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Training input `i` (fit order).
    pub fn input(&self, i: usize) -> &[f64] {
        self.point(i)
    }

    /// Posterior mean and variance at `q` (de-standardized).
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let ks: Vec<f64> = (0..self.n).map(|i| self.kernel.eval(self.point(i), q)).collect();
        let mu_std: f64 = ks.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let mut v = vec![0.0; self.n];
        self.chol.solve_lower_into(&ks, &mut v);
        let var_std = (self.kernel.eval(q, q) + self.kernel.noise_variance
            - v.iter().map(|x| x * x).sum::<f64>())
        .max(1e-12);
        (mu_std * self.y_scale + self.y_mean, var_std * self.y_scale * self.y_scale)
    }

    /// Model evidence of the fit (standardized space).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }

    /// Expected improvement at `q` for minimization against `best_y`.
    pub fn expected_improvement(&self, q: &[f64], best_y: f64) -> f64 {
        let (mu, var) = self.predict(q);
        ei_from_posterior(mu, var, best_y)
    }

    /// Expected improvement for `m` candidates packed row-major in `pts`
    /// (`m × dims`), written to `out`. Scores candidates in blocks over
    /// reusable scratch buffers — no per-candidate allocation — while
    /// running every per-candidate reduction in the same order as
    /// [`Gp::expected_improvement`], so each score is bit-identical to the
    /// one-at-a-time path.
    pub fn ei_batch(
        &self,
        pts: &[f64],
        m: usize,
        best_y: f64,
        s: &mut EiScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(pts.len(), m * self.dims);
        out.clear();
        let n = self.n;
        let dims = self.dims;
        // k(q, q) is signal · exp(-0 / 2ℓ²) = signal exactly.
        let kqq_plus_noise = self.kernel.signal_variance + self.kernel.noise_variance;
        let two_l2 = 2.0 * self.kernel.lengthscale * self.kernel.lengthscale;

        let mut done = 0;
        while done < m {
            let b = EI_BLOCK.min(m - done);
            let block = &pts[done * dims..(done + b) * dims];

            // Transpose the block to dim-major so the distance loops run
            // contiguously across candidates.
            s.qt.clear();
            s.qt.resize(dims * b, 0.0);
            for (c, q) in block.chunks_exact(dims).enumerate() {
                for (d, &v) in q.iter().enumerate() {
                    s.qt[d * b + c] = v;
                }
            }

            // Cross-covariances: ks[j][c] = k(x_j, q_c).
            s.ks.clear();
            s.ks.resize(n * b, 0.0);
            s.d2.resize(b, 0.0);
            for j in 0..n {
                let xj = self.point(j);
                s.d2[..b].fill(0.0);
                for (d, &xd) in xj.iter().enumerate() {
                    let qd = &s.qt[d * b..(d + 1) * b];
                    for (acc, &q) in s.d2[..b].iter_mut().zip(qd) {
                        let diff = xd - q;
                        *acc += diff * diff;
                    }
                }
                let row = &mut s.ks[j * b..(j + 1) * b];
                for (k, &d2) in row.iter_mut().zip(&s.d2[..b]) {
                    *k = self.kernel.signal_variance * (-d2 / two_l2).exp();
                }
            }

            // Posterior means: mu_std[c] = Σ_j ks[j][c] · alpha[j].
            s.mu.clear();
            s.mu.resize(b, 0.0);
            for (j, &a) in self.alpha.iter().enumerate() {
                let row = &s.ks[j * b..(j + 1) * b];
                for (acc, &k) in s.mu.iter_mut().zip(row) {
                    *acc += k * a;
                }
            }

            // v = L⁻¹ ks (in place), then Σ v² per candidate.
            self.chol.solve_lower_multi_in_place(&mut s.ks[..n * b], b);
            s.sumsq.clear();
            s.sumsq.resize(b, 0.0);
            for j in 0..n {
                let row = &s.ks[j * b..(j + 1) * b];
                for (acc, &v) in s.sumsq.iter_mut().zip(row) {
                    *acc += v * v;
                }
            }

            for c in 0..b {
                let var_std = (kqq_plus_noise - s.sumsq[c]).max(1e-12);
                let mu = s.mu[c] * self.y_scale + self.y_mean;
                let var = var_std * self.y_scale * self.y_scale;
                out.push(ei_from_posterior(mu, var, best_y));
            }
            done += b;
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the model holds no data (never constructible via `fit`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Expected improvement (minimization) from a posterior mean/variance.
fn ei_from_posterior(mu: f64, var: f64, best_y: f64) -> f64 {
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (best_y - mu).max(0.0);
    }
    let z = (best_y - mu) / sigma;
    let (pdf, cdf) = normal_pdf_cdf(z);
    ((best_y - mu) * cdf + sigma * pdf).max(0.0)
}

/// Standard normal pdf and cdf (Abramowitz–Stegun erf approximation).
pub(crate) fn normal_pdf_cdf(z: f64) -> (f64, f64) {
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let cdf = 0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2));
    (pdf, cdf)
}

/// erf via the A&S 7.1.26 polynomial (|ε| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = (x - 0.3)^2 sampled on a grid.
        let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3) * (x[0] - 0.3)).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = toy_data();
        let k = RbfKernel { noise_variance: 1e-6, ..RbfKernel::default() };
        let gp = Gp::fit(&xs, &ys, k).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (mu, _) = gp.predict(x);
            assert!((mu - y).abs() < 0.01, "at {x:?}: {mu} vs {y}");
        }
        assert_eq!(gp.len(), 9);
        assert!(!gp.is_empty());
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = toy_data();
        let gp = Gp::fit(&xs, &ys, RbfKernel::default()).unwrap();
        let (_, var_in) = gp.predict(&[0.5]);
        let (_, var_out) = gp.predict(&[3.0]);
        assert!(var_out > var_in * 2.0, "in {var_in}, out {var_out}");
    }

    #[test]
    fn ei_prefers_promising_regions() {
        let (xs, ys) = toy_data();
        let gp =
            Gp::fit(&xs, &ys, RbfKernel { noise_variance: 1e-4, ..RbfKernel::default() }).unwrap();
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        // EI near the optimum (0.3) should beat EI at the far edge (1.0).
        let ei_opt = gp.expected_improvement(&[0.3], best);
        let ei_edge = gp.expected_improvement(&[0.995], best);
        assert!(ei_opt >= 0.0 && ei_edge >= 0.0);
        let ei_gap = gp.expected_improvement(&[0.30001], best);
        assert!(ei_gap >= ei_edge, "opt {ei_opt} gap {ei_gap} edge {ei_edge}");
    }

    #[test]
    fn auto_fit_picks_reasonable_lengthscale() {
        let (xs, ys) = toy_data();
        let gp = Gp::fit_auto(&xs, &ys).unwrap();
        // A smooth quadratic prefers longer lengthscales over 0.1.
        assert!(gp.kernel.lengthscale >= 0.18, "picked {}", gp.kernel.lengthscale);
    }

    #[test]
    fn constant_targets_do_not_crash() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let ys = vec![2.0; 5];
        let gp = Gp::fit(&xs, &ys, RbfKernel::default()).unwrap();
        let (mu, var) = gp.predict(&[0.5]);
        assert!((mu - 2.0).abs() < 0.3);
        assert!(var.is_finite());
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-4);
    }

    #[test]
    fn multidimensional_inputs() {
        let xs: Vec<Vec<f64>> =
            (0..16).map(|i| vec![(i % 4) as f64 / 3.0, (i / 4) as f64 / 3.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        let gp = Gp::fit_auto(&xs, &ys).unwrap();
        let (mu, _) = gp.predict(&[0.5, 0.5]);
        assert!((mu - 1.5).abs() < 0.2, "predicted {mu}");
    }

    #[test]
    fn extend_matches_fit_bit_for_bit() {
        let (xs, ys) = toy_data();
        // Start from the first 3 points and extend with the rest.
        let mut inc = Gp::fit(&xs[..3], &ys[..3], RbfKernel::default()).unwrap();
        for (x, &y) in xs[3..].iter().zip(&ys[3..]) {
            inc.extend(x, y).unwrap();
        }
        let full = Gp::fit(&xs, &ys, RbfKernel::default()).unwrap();
        assert_eq!(inc.len(), full.len());
        assert_eq!(
            inc.log_marginal_likelihood().to_bits(),
            full.log_marginal_likelihood().to_bits()
        );
        for q in [[0.05], [0.31], [0.77], [1.4]] {
            let (m1, v1) = inc.predict(&q);
            let (m2, v2) = full.predict(&q);
            assert_eq!(m1.to_bits(), m2.to_bits());
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn failed_extend_leaves_model_usable() {
        let (xs, ys) = toy_data();
        let mut gp = Gp::fit(&xs, &ys, RbfKernel::default()).unwrap();
        let before = gp.predict(&[0.4]);
        assert_eq!(gp.extend(&[f64::NAN], 1.0), Err(NotPositiveDefinite));
        assert_eq!(gp.len(), 9);
        assert_eq!(gp.predict(&[0.4]), before);
        // And it can still grow afterwards.
        gp.extend(&[1.5], 1.44).unwrap();
        assert_eq!(gp.len(), 10);
    }

    #[test]
    fn ei_batch_matches_scalar_path() {
        let xs: Vec<Vec<f64>> =
            (0..40).map(|i| vec![(i % 8) as f64 / 7.0, (i / 8) as f64 / 4.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.4).powi(2) + (x[1] - 0.6).powi(2)).collect();
        let gp = Gp::fit_auto(&xs, &ys).unwrap();
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        // More candidates than one block, in a deterministic lattice.
        let m = 150;
        let pts: Vec<f64> =
            (0..m).flat_map(|i| [(i % 15) as f64 / 14.0, (i / 15) as f64 / 9.0]).collect();
        let mut out = Vec::new();
        gp.ei_batch(&pts, m, best, &mut EiScratch::default(), &mut out);
        assert_eq!(out.len(), m);
        for (c, &batch_ei) in out.iter().enumerate() {
            let q = &pts[c * 2..c * 2 + 2];
            let scalar_ei = gp.expected_improvement(q, best);
            assert_eq!(
                batch_ei.to_bits(),
                scalar_ei.to_bits(),
                "candidate {c}: {batch_ei} vs {scalar_ei}"
            );
        }
    }
}
