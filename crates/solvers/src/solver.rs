//! The solver interface: "the ability to run multiple optimization
//! algorithms without changes to other elements of the system" (§2.5).

use rand::rngs::StdRng;
use sdl_color::Rgb8;
use std::fmt;

/// One completed measurement fed back to the solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The proposed point, as ratios in the unit box (one per dye).
    pub ratios: Vec<f64>,
    /// What the camera measured.
    pub measured: Rgb8,
    /// The grade: delta-e distance to the target (lower is better).
    pub score: f64,
}

/// A color-picking decision procedure.
///
/// Solvers receive the full measurement history and propose `batch` new
/// points in the unit box; the application converts ratios to volumes.
pub trait ColorSolver: Send {
    /// Solver name for logs and records.
    fn name(&self) -> &'static str;

    /// Propose the next batch of points.
    fn propose(
        &mut self,
        target: Rgb8,
        history: &[Observation],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>>;

    /// How many times this solver's surrogate fit degenerated and it fell
    /// back to random proposals. Zero for solvers without a surrogate;
    /// surfaced per scenario in campaign reports so silent model failures
    /// are visible.
    fn degenerate_fallbacks(&self) -> u64 {
        0
    }

    /// Tell the solver the typical magnitude of the active objective's
    /// scores relative to the paper's RGB-Euclidean baseline (1.0 = RGB
    /// score units; perceptual ΔE objectives run near 0.25). Solvers with
    /// absolute thresholds calibrated in RGB units multiply them by
    /// `scale`; the default implementation ignores it (rank-based solvers
    /// are scale-free). Called once, right after construction, and a scale
    /// of exactly 1.0 must be a no-op.
    fn set_score_scale(&mut self, _scale: f64) {}
}

/// Best observation (lowest score) in a history.
pub fn best_observation(history: &[Observation]) -> Option<&Observation> {
    history.iter().min_by(|a, b| a.score.total_cmp(&b.score))
}

/// Runtime-selectable solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// The paper's evolutionary solver (default).
    Genetic,
    /// Gaussian-process Bayesian optimization with expected improvement.
    Bayesian,
    /// Uniform random search (baseline).
    Random,
    /// Deterministic grid refinement (baseline).
    Grid,
    /// Analytic oracle: inverts the known mixing model (skyline).
    Analytic,
    /// Simulated annealing (a CLSLab-style alternative search, paper §4).
    Annealing,
}

impl SolverKind {
    /// Name as used in configs and records.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Genetic => "genetic",
            SolverKind::Bayesian => "bayesian",
            SolverKind::Random => "random",
            SolverKind::Grid => "grid",
            SolverKind::Analytic => "analytic",
            SolverKind::Annealing => "annealing",
        }
    }

    /// Parse the name produced by [`SolverKind::name`] (or a common alias),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<SolverKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "genetic" | "ga" | "evolutionary" => Some(SolverKind::Genetic),
            "bayesian" | "bayes" | "gp" => Some(SolverKind::Bayesian),
            "random" => Some(SolverKind::Random),
            "grid" => Some(SolverKind::Grid),
            "analytic" | "oracle" => Some(SolverKind::Analytic),
            "annealing" | "sa" => Some(SolverKind::Annealing),
            _ => None,
        }
    }

    /// The canonical names [`SolverKind::parse`] accepts, for error
    /// messages ("genetic, bayesian, random, grid, analytic, annealing").
    pub fn valid_names() -> String {
        SolverKind::all().map(SolverKind::name).join(", ")
    }

    /// Instantiate a solver for a `dims`-dye problem.
    pub fn build(self, dims: usize) -> Box<dyn ColorSolver> {
        match self {
            SolverKind::Genetic => Box::new(crate::ga::GeneticSolver::new(dims)),
            SolverKind::Bayesian => Box::new(crate::bayes::BayesSolver::new(dims)),
            SolverKind::Random => Box::new(crate::random::RandomSolver::new(dims)),
            SolverKind::Grid => Box::new(crate::gridsearch::GridSolver::new(dims)),
            SolverKind::Analytic => Box::new(crate::analytic::AnalyticSolver::default_cmyk()),
            SolverKind::Annealing => Box::new(crate::anneal::AnnealingSolver::new(dims)),
        }
    }

    /// All kinds, for sweeps.
    pub fn all() -> [SolverKind; 6] {
        [
            SolverKind::Genetic,
            SolverKind::Bayesian,
            SolverKind::Annealing,
            SolverKind::Random,
            SolverKind::Grid,
            SolverKind::Analytic,
        ]
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Clamp a proposal into the unit box and fix non-finite components.
pub fn sanitize(point: &mut [f64]) {
    for v in point.iter_mut() {
        if !v.is_finite() {
            *v = 0.5;
        }
        *v = v.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in SolverKind::all() {
            assert_eq!(SolverKind::parse(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(SolverKind::parse("ga"), Some(SolverKind::Genetic));
        assert_eq!(SolverKind::parse("gp"), Some(SolverKind::Bayesian));
        assert_eq!(SolverKind::parse("quantum"), None);
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(SolverKind::parse("Genetic"), Some(SolverKind::Genetic));
        assert_eq!(SolverKind::parse("BAYESIAN"), Some(SolverKind::Bayesian));
        assert_eq!(SolverKind::parse(" Annealing "), Some(SolverKind::Annealing));
        assert_eq!(SolverKind::parse("GA"), Some(SolverKind::Genetic));
    }

    #[test]
    fn valid_names_lists_all_kinds() {
        let names = SolverKind::valid_names();
        for k in SolverKind::all() {
            assert!(names.contains(k.name()), "{} missing from '{names}'", k.name());
        }
    }

    #[test]
    fn best_observation_finds_minimum() {
        let mk = |s: f64| Observation { ratios: vec![0.5], measured: Rgb8::new(0, 0, 0), score: s };
        let h = vec![mk(12.0), mk(3.5), mk(9.0)];
        assert_eq!(best_observation(&h).unwrap().score, 3.5);
        assert!(best_observation(&[]).is_none());
    }

    #[test]
    fn sanitize_fixes_bad_points() {
        let mut p = vec![-0.5, 2.0, f64::NAN, 0.25];
        sanitize(&mut p);
        assert_eq!(p, vec![0.0, 1.0, 0.5, 0.25]);
    }

    #[test]
    fn builders_produce_named_solvers() {
        for k in SolverKind::all() {
            let s = k.build(4);
            assert_eq!(s.name(), k.name());
        }
    }
}
