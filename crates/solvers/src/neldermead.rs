//! Nelder–Mead simplex minimization with box constraints.
//!
//! Used by the analytic oracle to invert the mixing model and by the
//! Bayesian solver to polish acquisition maxima.

/// Minimize `f` over the unit box starting at `x0`.
///
/// Returns `(x_best, f_best)`. `max_iters` bounds function evaluations
/// roughly at `2 × max_iters`.
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    step: f64,
    max_iters: usize,
) -> (Vec<f64>, f64) {
    let d = x0.len();
    assert!(d > 0);
    let clamp = |x: &mut Vec<f64>| {
        for v in x.iter_mut() {
            *v = v.clamp(0.0, 1.0);
        }
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(d + 1);
    let mut x0 = x0.to_vec();
    clamp(&mut x0);
    let fx0 = f(&x0);
    simplex.push((x0.clone(), fx0));
    for i in 0..d {
        let mut xi = x0.clone();
        xi[i] = if xi[i] + step <= 1.0 { xi[i] + step } else { (xi[i] - step).max(0.0) };
        let fx = f(&xi);
        simplex.push((xi, fx));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    for _ in 0..max_iters {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = simplex[0].1;
        let worst = simplex[d].1;
        if (worst - best).abs() < 1e-12 {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; d];
        for (x, _) in &simplex[..d] {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v / d as f64;
            }
        }

        let point = |base: &[f64], towards: &[f64], coeff: f64| -> Vec<f64> {
            let mut p: Vec<f64> =
                base.iter().zip(towards).map(|(c, w)| c + coeff * (c - w)).collect();
            for v in p.iter_mut() {
                *v = v.clamp(0.0, 1.0);
            }
            p
        };

        // Reflection.
        let xr = point(&centroid, &simplex[d].0, alpha);
        let fr = f(&xr);
        if fr < simplex[0].1 {
            // Expansion.
            let xe = point(&centroid, &simplex[d].0, gamma);
            let fe = f(&xe);
            simplex[d] = if fe < fr { (xe, fe) } else { (xr, fr) };
            continue;
        }
        if fr < simplex[d - 1].1 {
            simplex[d] = (xr, fr);
            continue;
        }
        // Contraction.
        let xc = point(&centroid, &simplex[d].0, -rho);
        let fc = f(&xc);
        if fc < simplex[d].1 {
            simplex[d] = (xc, fc);
            continue;
        }
        // Shrink.
        let best_x = simplex[0].0.clone();
        for entry in simplex.iter_mut().skip(1) {
            let x: Vec<f64> =
                entry.0.iter().zip(&best_x).map(|(v, b)| b + sigma * (v - b)).collect();
            let fx = f(&x);
            *entry = (x, fx);
        }
    }
    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    simplex.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_minimum() {
        let mut f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2);
        let (x, fx) = minimize(&mut f, &[0.9, 0.1], 0.2, 200);
        assert!(fx < 1e-6, "f = {fx}");
        assert!((x[0] - 0.3).abs() < 1e-3 && (x[1] - 0.7).abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn respects_box_constraints() {
        // Unconstrained minimum at -1, box forces 0.
        let mut f = |x: &[f64]| (x[0] + 1.0).powi(2);
        let (x, _) = minimize(&mut f, &[0.5], 0.2, 200);
        assert!(x[0] >= 0.0);
        assert!(x[0] < 0.01, "{x:?}");
    }

    #[test]
    fn handles_rosenbrock_reasonably() {
        // Scaled Rosenbrock inside the unit box; optimum at (1,1) corner.
        let mut f = |x: &[f64]| {
            let a = 1.0 - x[0];
            let b = x[1] - x[0] * x[0];
            a * a + 20.0 * b * b
        };
        let (x, fx) = minimize(&mut f, &[0.2, 0.2], 0.3, 800);
        assert!(fx < 0.05, "f = {fx} at {x:?}");
    }

    #[test]
    fn four_dimensional_sphere() {
        let target = [0.18, 0.16, 0.16, 0.62];
        let mut f = |x: &[f64]| x.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        let (x, fx) = minimize(&mut f, &[0.5; 4], 0.25, 600);
        assert!(fx < 1e-5, "f = {fx} at {x:?}");
    }
}
