//! The analytic oracle: "the color picking problem admits to an analytic
//! solution, given accurate models of how colors combine and the properties
//! of our color sensor" (§2.5).
//!
//! This solver is that analytic solution: it knows the Beer–Lambert forward
//! model and the dye set, and inverts them with multi-start Nelder–Mead. It
//! serves as the skyline in the solver-comparison experiment — black-box
//! methods cannot beat it, and the gap to it measures what treating the
//! problem "as a black box" costs.

use crate::neldermead::minimize;
use crate::solver::{sanitize, ColorSolver, Observation};
use rand::rngs::StdRng;
use rand::Rng;
use sdl_color::{BeerLambert, DyeSet, MixModel, Recipe, Rgb8};

/// Model-inverting oracle solver.
pub struct AnalyticSolver {
    dyes: DyeSet,
    model: Box<dyn MixModel>,
    /// Multi-start count for the inversion.
    pub starts: usize,
    /// Jitter radius for batch slots beyond the first (re-measuring one
    /// point repeatedly wastes samples under sensor noise).
    pub jitter: f64,
    cached: Option<(Rgb8, Vec<f64>)>,
}

impl AnalyticSolver {
    /// Oracle over an explicit dye set and model.
    pub fn new(dyes: DyeSet, model: Box<dyn MixModel>) -> AnalyticSolver {
        AnalyticSolver { dyes, model, starts: 6, jitter: 0.02, cached: None }
    }

    /// Oracle for the default CMYK Beer–Lambert setup.
    pub fn default_cmyk() -> AnalyticSolver {
        AnalyticSolver::new(DyeSet::cmyk(), Box::new(BeerLambert::default()))
    }

    /// Invert the forward model for `target` (cached per target).
    pub fn invert(&mut self, target: Rgb8, rng: &mut StdRng) -> Vec<f64> {
        if let Some((t, x)) = &self.cached {
            if *t == target {
                return x.clone();
            }
        }
        let dims = self.dyes.len();
        let target_lin = target.to_linear();
        let dyes = self.dyes.clone();
        let model = &self.model;
        let mut objective = |ratios: &[f64]| -> f64 {
            let recipe = match Recipe::from_ratios(ratios, &dyes) {
                Ok(r) => r,
                Err(_) => return f64::INFINITY,
            };
            let c = model.well_color(&dyes, &recipe);
            let dr = c.r - target_lin.r;
            let dg = c.g - target_lin.g;
            let db = c.b - target_lin.b;
            dr * dr + dg * dg + db * db
        };

        let mut best: Option<(Vec<f64>, f64)> = None;
        for s in 0..self.starts {
            let x0: Vec<f64> = if s == 0 {
                vec![0.2; dims]
            } else {
                (0..dims).map(|_| rng.gen::<f64>()).collect()
            };
            let (x, fx) = minimize(&mut objective, &x0, 0.2, 300);
            if best.as_ref().is_none_or(|(_, bf)| fx < *bf) {
                best = Some((x, fx));
            }
        }
        let (mut x, _) = best.expect("at least one start");
        sanitize(&mut x);
        self.cached = Some((target, x.clone()));
        x
    }
}

impl ColorSolver for AnalyticSolver {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn propose(
        &mut self,
        target: Rgb8,
        _history: &[Observation],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        let solution = self.invert(target, rng);
        let mut out = Vec::with_capacity(batch);
        out.push(solution.clone());
        for _ in 1..batch {
            let mut p: Vec<f64> =
                solution.iter().map(|x| x + rng.gen_range(-self.jitter..=self.jitter)).collect();
            sanitize(&mut p);
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sdl_color::MixModel;

    #[test]
    fn inversion_hits_the_paper_target() {
        let mut oracle = AnalyticSolver::default_cmyk();
        let mut rng = StdRng::seed_from_u64(1);
        let ratios = oracle.invert(Rgb8::PAPER_TARGET, &mut rng);
        let set = DyeSet::cmyk();
        let recipe = Recipe::from_ratios(&ratios, &set).unwrap();
        let achieved = BeerLambert::default().well_color(&set, &recipe).to_srgb();
        let err = achieved.distance(Rgb8::PAPER_TARGET);
        assert!(err < 2.0, "oracle lands at {achieved} ({err:.2} away)");
    }

    #[test]
    fn inversion_is_cached_per_target() {
        let mut oracle = AnalyticSolver::default_cmyk();
        let mut rng = StdRng::seed_from_u64(2);
        let a = oracle.invert(Rgb8::new(100, 140, 90), &mut rng);
        let b = oracle.invert(Rgb8::new(100, 140, 90), &mut rng);
        assert_eq!(a, b);
        let c = oracle.invert(Rgb8::new(60, 60, 150), &mut rng);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_jitters_around_solution() {
        let mut oracle = AnalyticSolver::default_cmyk();
        let mut rng = StdRng::seed_from_u64(3);
        let props = oracle.propose(Rgb8::PAPER_TARGET, &[], 8, &mut rng);
        assert_eq!(props.len(), 8);
        for p in &props[1..] {
            let d: f64 =
                p.iter().zip(&props[0]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            assert!(d <= 0.05, "jitter too large: {d}");
        }
    }

    #[test]
    fn unreachable_targets_saturate_gracefully() {
        // Pure saturated red is outside the CMYK subtractive gamut; the
        // oracle should still return a finite best effort.
        let mut oracle = AnalyticSolver::default_cmyk();
        let mut rng = StdRng::seed_from_u64(4);
        let ratios = oracle.invert(Rgb8::new(255, 0, 0), &mut rng);
        assert!(ratios.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}
