//! `sdl-solvers` — decision procedures for the color-matching loop.
//!
//! The paper's two solvers plus baselines, all behind one [`ColorSolver`]
//! interface so "multiple optimization algorithms \[run\] without changes to
//! other elements of the system" (§2.5):
//!
//! * [`GeneticSolver`] — the paper's evolutionary scheme (elite + ⅓
//!   crossover-average + ⅓ mutation + ⅓ random, grid-seeded);
//! * [`BayesSolver`] — Gaussian-process surrogate with expected
//!   improvement, built on the crate's own [`Gp`] and [`Matrix`];
//! * [`RandomSolver`] / [`GridSolver`] — baselines;
//! * [`AnalyticSolver`] — the model-inverting oracle the paper mentions as
//!   the analytic solution.
//!
//! Solvers propose points in the unit box (one ratio per dye) and receive
//! scored [`Observation`]s back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytic;
mod anneal;
mod bayes;
mod ga;
mod gp;
mod gridsearch;
pub mod linalg;
mod neldermead;
mod random;
mod reference;
mod registry;
mod sampling;
mod solver;

pub use analytic::AnalyticSolver;
pub use anneal::AnnealingSolver;
pub use bayes::BayesSolver;
pub use ga::GeneticSolver;
pub use gp::{EiScratch, Gp, RbfKernel, FIT_AUTO_LENGTHSCALES};
pub use gridsearch::GridSolver;
pub use linalg::{CholeskyFactor, Matrix};
pub use neldermead::minimize as nelder_mead;
pub use random::RandomSolver;
pub use reference::RefGp;
pub use registry::{
    build_registered, register_solver, registered_names, solver_registered, SolverFactory,
    SolverRegistry,
};
pub use sampling::{grid_sample, latin_hypercube, uniform_grid};
pub use solver::{best_observation, sanitize, ColorSolver, Observation, SolverKind};

// The RNG type appearing in [`ColorSolver::propose`], re-exported so
// downstream crates can implement the trait (and register the result in a
// [`SolverRegistry`]) without depending on `rand` directly.
pub use rand::rngs::StdRng;
