//! Open solver registration: names → solver factories.
//!
//! [`SolverKind`] stays the closed set of built-in algorithms, but the
//! paper's modularity claim (§2.5) asks for more: downstream crates must be
//! able to plug in a new decision procedure without editing this crate. A
//! [`SolverRegistry`] maps names to factories; the process-wide
//! [`global`] registry starts with the six built-ins pre-registered, and
//! [`register_solver`] adds custom ones. Config and CLI error paths list
//! registered names via [`registered_names`], so a custom solver shows up
//! in `--solver` listings the moment it is registered.
//!
//! ```
//! use sdl_solvers::{register_solver, build_registered, RandomSolver};
//!
//! register_solver("my-search", |dims| Box::new(RandomSolver::new(dims)));
//! let solver = build_registered("my-search", 4).expect("registered above");
//! assert_eq!(solver.name(), "random");
//! ```

use crate::solver::{ColorSolver, SolverKind};
use std::sync::{OnceLock, RwLock};

/// A factory producing a solver for a `dims`-dye problem.
pub type SolverFactory = Box<dyn Fn(usize) -> Box<dyn ColorSolver> + Send + Sync>;

/// A name → factory table. Lookups are case-insensitive; listing order is
/// registration order (built-ins first).
#[derive(Default)]
pub struct SolverRegistry {
    entries: Vec<(String, SolverFactory)>,
}

impl SolverRegistry {
    /// An empty registry (no names resolve).
    pub fn empty() -> SolverRegistry {
        SolverRegistry { entries: Vec::new() }
    }

    /// A registry with the six [`SolverKind`] built-ins pre-registered
    /// under their canonical names.
    pub fn with_builtins() -> SolverRegistry {
        let mut reg = SolverRegistry::empty();
        for kind in SolverKind::all() {
            reg.register(kind.name(), move |dims| kind.build(dims));
        }
        reg
    }

    /// Register (or replace) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(usize) -> Box<dyn ColorSolver> + Send + Sync + 'static,
    ) {
        let name = name.into();
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| n.eq_ignore_ascii_case(&name)) {
            slot.1 = Box::new(factory);
        } else {
            self.entries.push((name, Box::new(factory)));
        }
    }

    /// Is `name` registered? Accepts the built-ins' aliases ("ga", "gp", …)
    /// exactly as [`SolverKind::parse`] does.
    pub fn contains(&self, name: &str) -> bool {
        self.resolve(name).is_some()
    }

    /// Build the solver registered under `name` for a `dims`-dye problem.
    pub fn build(&self, name: &str, dims: usize) -> Option<Box<dyn ColorSolver>> {
        self.resolve(name).map(|f| f(dims))
    }

    /// Registered names in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Comma-separated name listing for error messages.
    pub fn names_list(&self) -> String {
        self.names().join(", ")
    }

    fn resolve(&self, name: &str) -> Option<&SolverFactory> {
        let canonical = SolverKind::parse(name).map(SolverKind::name);
        let wanted = canonical.unwrap_or(name.trim());
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(wanted)).map(|(_, f)| f)
    }
}

fn global_lock() -> &'static RwLock<SolverRegistry> {
    static GLOBAL: OnceLock<RwLock<SolverRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(SolverRegistry::with_builtins()))
}

/// Run `f` against the process-wide registry (read lock).
pub fn global<R>(f: impl FnOnce(&SolverRegistry) -> R) -> R {
    f(&global_lock().read().expect("solver registry poisoned"))
}

/// Register a custom solver in the process-wide registry.
pub fn register_solver(
    name: impl Into<String>,
    factory: impl Fn(usize) -> Box<dyn ColorSolver> + Send + Sync + 'static,
) {
    global_lock().write().expect("solver registry poisoned").register(name, factory);
}

/// Build a solver by registered name from the process-wide registry.
pub fn build_registered(name: &str, dims: usize) -> Option<Box<dyn ColorSolver>> {
    global(|reg| reg.build(name, dims))
}

/// Is `name` registered in the process-wide registry?
pub fn solver_registered(name: &str) -> bool {
    global(|reg| reg.contains(name))
}

/// Comma-separated listing of every registered solver name — what config
/// and CLI error paths print.
pub fn registered_names() -> String {
    global(SolverRegistry::names_list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSolver;

    #[test]
    fn builtins_are_preregistered() {
        let reg = SolverRegistry::with_builtins();
        for kind in SolverKind::all() {
            assert!(reg.contains(kind.name()), "{} missing", kind.name());
            let s = reg.build(kind.name(), 4).unwrap();
            assert_eq!(s.name(), kind.name());
        }
        assert_eq!(reg.names().len(), SolverKind::all().len());
    }

    #[test]
    fn lookup_is_case_insensitive_and_alias_aware() {
        let reg = SolverRegistry::with_builtins();
        assert!(reg.contains("GENETIC"));
        assert!(reg.contains("ga"));
        assert!(reg.contains("gp"));
        assert!(!reg.contains("quantum"));
    }

    #[test]
    fn custom_registration_and_replacement() {
        let mut reg = SolverRegistry::with_builtins();
        reg.register("my-search", |dims| Box::new(RandomSolver::new(dims)));
        assert!(reg.contains("my-search"));
        assert!(reg.contains("MY-SEARCH"));
        assert!(reg.names_list().contains("my-search"));
        // Replacement keeps one entry.
        let before = reg.names().len();
        reg.register("My-Search", |dims| Box::new(RandomSolver::new(dims)));
        assert_eq!(reg.names().len(), before);
    }

    #[test]
    fn global_registry_accepts_custom_solvers() {
        register_solver("registry-test-solver", |dims| Box::new(RandomSolver::new(dims)));
        assert!(solver_registered("registry-test-solver"));
        assert!(build_registered("registry-test-solver", 3).is_some());
        assert!(registered_names().contains("registry-test-solver"));
        assert!(registered_names().contains("genetic"));
    }
}
