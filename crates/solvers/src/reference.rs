//! The **pre-optimization** Gaussian process, frozen verbatim.
//!
//! This is the `Gp` implementation as it stood before the incremental
//! hot-path rework: dense kernel matrix via [`Matrix::from_fn`] (all n²
//! kernel evaluations), `Vec<Vec<f64>>` input storage, O(n³) refit per
//! call, and allocating per-candidate prediction. It is kept runnable for
//! two reasons:
//!
//! * the `hotpath` bench measures the *before* side of the perf trajectory
//!   against the genuine old work profile, not an approximation;
//! * the equivalence suite proves the optimized [`crate::Gp`] path is
//!   bit-identical to this one (same proposals, same campaign
//!   fingerprints).
//!
//! Do not "improve" this module — its value is being frozen.

use crate::gp::RbfKernel;
use crate::linalg::{mean, std_dev, Matrix, NotPositiveDefinite};

/// The pre-optimization fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct RefGp {
    kernel: RbfKernel,
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Matrix,
    y_mean: f64,
    y_scale: f64,
    log_marginal: f64,
}

impl RefGp {
    /// Fit to inputs `x` (unit box) and targets `y`. Targets are
    /// standardized internally.
    pub fn fit(x: &[Vec<f64>], y: &[f64], kernel: RbfKernel) -> Result<RefGp, NotPositiveDefinite> {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "GP needs at least one observation");
        let n = x.len();
        let y_mean = mean(y);
        let y_scale = {
            let s = std_dev(y);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        };
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_scale).collect();

        let k = Matrix::from_fn(n, n, |r, c| {
            kernel.eval(&x[r], &x[c]) + if r == c { kernel.noise_variance } else { 0.0 }
        });
        let chol = k.cholesky()?;
        let alpha = chol.solve_lower_transpose(&chol.solve_lower(&ys));

        // log p(y|X) = -1/2 yᵀα - 1/2 log|K| - n/2 log 2π  (standardized y)
        let fit_term: f64 = -0.5 * ys.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>();
        let log_marginal = fit_term
            - 0.5 * chol.log_det_from_cholesky()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(RefGp { kernel, x: x.to_vec(), alpha, chol, y_mean, y_scale, log_marginal })
    }

    /// Fit with a small ML-II grid search over the lengthscale.
    pub fn fit_auto(x: &[Vec<f64>], y: &[f64]) -> Result<RefGp, NotPositiveDefinite> {
        let mut best: Option<RefGp> = None;
        for &l in &crate::gp::FIT_AUTO_LENGTHSCALES {
            let k = RbfKernel { lengthscale: l, ..RbfKernel::default() };
            if let Ok(gp) = RefGp::fit(x, y, k) {
                if best.as_ref().is_none_or(|b| gp.log_marginal > b.log_marginal) {
                    best = Some(gp);
                }
            }
        }
        best.ok_or(NotPositiveDefinite)
    }

    /// Posterior mean and variance at `q` (de-standardized).
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let ks: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, q)).collect();
        let mu_std: f64 = ks.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.chol.solve_lower(&ks);
        let var_std = (self.kernel.eval(q, q) + self.kernel.noise_variance
            - v.iter().map(|x| x * x).sum::<f64>())
        .max(1e-12);
        (mu_std * self.y_scale + self.y_mean, var_std * self.y_scale * self.y_scale)
    }

    /// Model evidence of the fit (standardized space).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }

    /// Expected improvement at `q` for minimization against `best_y`.
    pub fn expected_improvement(&self, q: &[f64], best_y: f64) -> f64 {
        let (mu, var) = self.predict(q);
        let sigma = var.sqrt();
        if sigma < 1e-12 {
            return (best_y - mu).max(0.0);
        }
        let z = (best_y - mu) / sigma;
        let (pdf, cdf) = crate::gp::normal_pdf_cdf(z);
        ((best_y - mu) * cdf + sigma * pdf).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gp;

    #[test]
    fn reference_gp_matches_optimized_gp_bitwise() {
        let xs: Vec<Vec<f64>> =
            (0..24).map(|i| vec![(i % 6) as f64 / 5.0, (i / 6) as f64 / 3.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2)).collect();
        let old = RefGp::fit_auto(&xs, &ys).unwrap();
        let new = Gp::fit_auto(&xs, &ys).unwrap();
        assert_eq!(
            old.log_marginal_likelihood().to_bits(),
            new.log_marginal_likelihood().to_bits()
        );
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        for q in [[0.1, 0.2], [0.31, 0.69], [0.9, 0.05]] {
            let (m1, v1) = old.predict(&q);
            let (m2, v2) = new.predict(&q);
            assert_eq!(m1.to_bits(), m2.to_bits());
            assert_eq!(v1.to_bits(), v2.to_bits());
            assert_eq!(
                old.expected_improvement(&q, best).to_bits(),
                new.expected_improvement(&q, best).to_bits()
            );
        }
    }
}
