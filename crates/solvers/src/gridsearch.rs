//! Deterministic coarse-to-fine grid refinement — a systematic baseline.
//!
//! Walks a uniform grid; once the grid is exhausted, re-centers a finer grid
//! on the best observation so far. Entirely deterministic given the history.

use crate::sampling::uniform_grid;
use crate::solver::{best_observation, sanitize, ColorSolver, Observation};
use rand::rngs::StdRng;
use sdl_color::Rgb8;

/// Grid-refinement baseline.
#[derive(Debug, Clone)]
pub struct GridSolver {
    dims: usize,
    /// Levels per dimension of each grid generation.
    pub levels: usize,
    /// Shrink factor of the search box per refinement.
    pub shrink: f64,
    cursor: usize,
    round: usize,
}

impl GridSolver {
    /// Baseline for `dims` dyes.
    pub fn new(dims: usize) -> GridSolver {
        GridSolver { dims, levels: 3, shrink: 0.5, cursor: 0, round: 0 }
    }

    fn grid_points(&self, center: &[f64], half_width: f64) -> Vec<Vec<f64>> {
        uniform_grid(self.dims, self.levels)
            .into_iter()
            .map(|p| {
                let mut q: Vec<f64> = p
                    .iter()
                    .zip(center)
                    .map(|(u, c)| c - half_width + u * 2.0 * half_width)
                    .collect();
                sanitize(&mut q);
                q
            })
            .collect()
    }
}

impl ColorSolver for GridSolver {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn propose(
        &mut self,
        _target: Rgb8,
        history: &[Observation],
        batch: usize,
        _rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(batch);
        while out.len() < batch {
            let center: Vec<f64> = match best_observation(history) {
                Some(best) if self.round > 0 => best.ratios.clone(),
                _ => vec![0.5; self.dims],
            };
            let half_width = 0.5 * self.shrink.powi(self.round as i32);
            let grid = self.grid_points(&center, half_width);
            if self.cursor >= grid.len() {
                self.round += 1;
                self.cursor = 0;
                continue;
            }
            out.push(grid[self.cursor].clone());
            self.cursor += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn obs(ratios: Vec<f64>, score: f64) -> Observation {
        Observation { ratios, measured: Rgb8::new(0, 0, 0), score }
    }

    #[test]
    fn first_round_covers_the_full_box() {
        let mut s = GridSolver::new(2);
        let props = s.propose(Rgb8::PAPER_TARGET, &[], 9, &mut rng());
        assert_eq!(props.len(), 9);
        assert!(props.contains(&vec![0.0, 0.0]));
        assert!(props.contains(&vec![1.0, 1.0]));
        assert!(props.contains(&vec![0.5, 0.5]));
    }

    #[test]
    fn refinement_recenters_on_best() {
        let mut s = GridSolver::new(2);
        // Exhaust round 0 (9 points).
        let _ = s.propose(Rgb8::PAPER_TARGET, &[], 9, &mut rng());
        let history = vec![obs(vec![0.25, 0.75], 1.0), obs(vec![0.9, 0.9], 50.0)];
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 9, &mut rng());
        // All round-1 points inside the shrunken box around (0.25, 0.75).
        for p in &props {
            assert!((p[0] - 0.25).abs() <= 0.25 + 1e-9, "{p:?}");
            assert!((p[1] - 0.75).abs() <= 0.25 + 1e-9, "{p:?}");
        }
    }

    #[test]
    fn deterministic_and_stateful() {
        let mut a = GridSolver::new(3);
        let mut b = GridSolver::new(3);
        let mut r = rng();
        let pa: Vec<_> =
            (0..5).flat_map(|_| a.propose(Rgb8::PAPER_TARGET, &[], 4, &mut r)).collect();
        let pb: Vec<_> =
            (0..5).flat_map(|_| b.propose(Rgb8::PAPER_TARGET, &[], 4, &mut r)).collect();
        assert_eq!(pa, pb);
        // Consecutive calls continue the walk rather than restarting.
        assert_ne!(pa[0..4], pa[4..8]);
    }
}
