//! Simulated-annealing solver.
//!
//! The paper's future work (§4) is to connect the rig to Baird & Sparks'
//! CLSLab "so as to permit experimentation with their various optimization
//! codes and different search approaches". This solver is one such
//! alternative: Metropolis acceptance over the measurement history with a
//! geometric temperature schedule tied to the sample budget.

use crate::solver::{best_observation, sanitize, ColorSolver, Observation};
use rand::rngs::StdRng;
use rand::Rng;
use sdl_color::Rgb8;

/// Simulated-annealing color solver.
#[derive(Debug, Clone)]
pub struct AnnealingSolver {
    dims: usize,
    /// Initial step half-width (fraction of the unit box).
    pub initial_step: f64,
    /// Final step half-width.
    pub final_step: f64,
    /// Samples over which the temperature anneals to its floor.
    pub horizon: u32,
    /// Initial acceptance temperature in score units. Calibrated for
    /// RGB-Euclidean scores; [`ColorSolver::set_score_scale`] rescales it
    /// when the campaign grades in a perceptual space instead.
    pub initial_temp: f64,
    // Floor of the restart rule's temperature term, in score units
    // (rescaled alongside `initial_temp`).
    temp_floor: f64,
    /// Current incumbent the chain walks from (None until first feedback).
    state: Option<Vec<f64>>,
    state_score: f64,
    proposals_made: u32,
}

impl AnnealingSolver {
    /// Default-configured solver for `dims` dyes.
    pub fn new(dims: usize) -> AnnealingSolver {
        AnnealingSolver {
            dims,
            initial_step: 0.25,
            final_step: 0.03,
            horizon: 96,
            initial_temp: 20.0,
            temp_floor: 1.0,
            state: None,
            state_score: f64::INFINITY,
            proposals_made: 0,
        }
    }

    fn progress(&self) -> f64 {
        (self.proposals_made as f64 / self.horizon as f64).min(1.0)
    }

    fn step_width(&self) -> f64 {
        self.initial_step + (self.final_step - self.initial_step) * self.progress()
    }

    fn temperature(&self) -> f64 {
        // Geometric cooling to 1% of the initial temperature.
        self.initial_temp * (0.01f64).powf(self.progress())
    }

    /// Metropolis update of the chain state from the latest observations.
    fn absorb(&mut self, history: &[Observation], rng: &mut StdRng) {
        let new: Vec<&Observation> = history
            .iter()
            .rev()
            .take(8) // at most the last batch matters
            .collect();
        for obs in new.into_iter().rev() {
            match &self.state {
                None => {
                    self.state = Some(obs.ratios.clone());
                    self.state_score = obs.score;
                }
                Some(_) => {
                    let delta = obs.score - self.state_score;
                    let accept = delta <= 0.0
                        || rng.gen::<f64>() < (-delta / self.temperature().max(1e-9)).exp();
                    if accept {
                        self.state = Some(obs.ratios.clone());
                        self.state_score = obs.score;
                    }
                }
            }
        }
        // Never walk away from the global best entirely: restart the chain
        // there if it has drifted badly (score more than 3 temperatures off).
        if let Some(best) = best_observation(history) {
            if self.state_score > best.score + 3.0 * self.temperature().max(self.temp_floor) {
                self.state = Some(best.ratios.clone());
                self.state_score = best.score;
            }
        }
    }
}

impl ColorSolver for AnnealingSolver {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn set_score_scale(&mut self, scale: f64) {
        // Both absolute-threshold knobs are in score units; everything else
        // (steps, horizon, acceptance ratioing) is scale-free. ×1.0 is an
        // IEEE identity, so the RGB objective leaves the solver bit-exact.
        self.initial_temp *= scale;
        self.temp_floor *= scale;
    }

    fn propose(
        &mut self,
        _target: Rgb8,
        history: &[Observation],
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<f64>> {
        assert!(batch > 0);
        self.absorb(history, rng);
        let mut out = Vec::with_capacity(batch);
        for _ in 0..batch {
            self.proposals_made += 1;
            let step = self.step_width();
            let mut p: Vec<f64> = match &self.state {
                Some(s) => s.iter().map(|x| x + rng.gen_range(-step..=step)).collect(),
                None => (0..self.dims).map(|_| rng.gen::<f64>()).collect(),
            };
            sanitize(&mut p);
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn obs(ratios: Vec<f64>, score: f64) -> Observation {
        Observation { ratios, measured: Rgb8::new(0, 0, 0), score }
    }

    #[test]
    fn cold_start_is_random() {
        let mut s = AnnealingSolver::new(4);
        let props = s.propose(Rgb8::PAPER_TARGET, &[], 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(props.len(), 4);
        for p in &props {
            assert_eq!(p.len(), 4);
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn score_scale_renormalizes_the_temperature() {
        let mut s = AnnealingSolver::new(4);
        s.set_score_scale(0.25);
        assert_eq!(s.initial_temp, 5.0);
        assert_eq!(s.temp_floor, 0.25);
        // Unit scale is exactly a no-op.
        let mut u = AnnealingSolver::new(4);
        u.set_score_scale(1.0);
        assert_eq!(u.initial_temp, AnnealingSolver::new(4).initial_temp);
        assert_eq!(u.temp_floor, AnnealingSolver::new(4).temp_floor);
    }

    #[test]
    fn step_width_shrinks_over_the_horizon() {
        let mut s = AnnealingSolver::new(4);
        let early = s.step_width();
        s.proposals_made = s.horizon;
        let late = s.step_width();
        assert!(early > late);
        assert!((late - s.final_step).abs() < 1e-12);
        assert!(s.temperature() < s.initial_temp * 0.02);
    }

    #[test]
    fn walks_near_the_incumbent_when_cold() {
        let mut s = AnnealingSolver::new(4);
        s.proposals_made = s.horizon; // fully annealed: small steps
        let history = vec![obs(vec![0.3, 0.3, 0.3, 0.3], 5.0), obs(vec![0.9, 0.9, 0.9, 0.9], 80.0)];
        let mut rng = StdRng::seed_from_u64(2);
        let props = s.propose(Rgb8::PAPER_TARGET, &history, 8, &mut rng);
        for p in props {
            let d: f64 = p
                .iter()
                .zip(&[0.3, 0.3, 0.3, 0.3])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(d < 0.2, "proposal strayed {d} from the incumbent");
        }
    }

    #[test]
    fn converges_on_a_synthetic_objective() {
        let hidden = [0.18, 0.16, 0.16, 0.62];
        let mut s = AnnealingSolver::new(4);
        let mut history: Vec<Observation> = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..32 {
            let batch = s.propose(Rgb8::PAPER_TARGET, &history, 4, &mut rng);
            for p in batch {
                let score: f64 =
                    p.iter().zip(&hidden).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
                        * 100.0;
                history.push(obs(p, score));
            }
        }
        let best = best_observation(&history).unwrap().score;
        assert!(best < 15.0, "SA failed to converge: best {best}");
    }
}
