//! JSON reader/writer for the publication substrate.
//!
//! Published run records (paper Figure 3) are serialized as JSON documents;
//! the portal reads them back for search and rendering.

use crate::error::ParseError;
use crate::value::Value;

/// Serialize compactly (single line).
pub fn to_json(v: &Value) -> String {
    let mut out = String::new();
    write_json(v, None, 0, &mut out);
    out
}

/// Serialize with two-space indentation.
pub fn to_json_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_json(v, Some(2), 0, &mut out);
    out
}

fn write_json(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_json(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn from_json(src: &str) -> Result<Value, ParseError> {
    let mut p = JsonParser { src: src.as_bytes(), pos: 0, line: 1 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(ParseError { line: p.line, msg: "trailing characters after document".into() });
    }
    Ok(v)
}

struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line, msg: msg.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.src.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(&b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, ParseError> {
        if self.src[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        if is_float {
            text.parse::<f64>()
                .ok()
                .filter(|f| f.is_finite())
                .map(Value::Float)
                .ok_or_else(|| self.err(format!("invalid number '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid integer '{text}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.src.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.src.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our records;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of ordinary bytes in one go,
                    // validating UTF-8 once per run. (Validating the whole
                    // remaining input per character made long strings —
                    // e.g. megabyte hex-encoded plate frames — quadratic.)
                    // `"` and `\` are ASCII, so scanning raw bytes for them
                    // never splits a multi-byte scalar.
                    let start = self.pos;
                    while let Some(&b) = self.src.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        if b == b'\n' {
                            self.line += 1;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key '{key}'")));
            }
            entries.push((key, value));
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_record() {
        let mut rec = Value::map();
        rec.set("run", 12).set("score", 10.44).set("ok", true).set("note", Value::Null);
        rec.set("color", vec![119i64, 121, 118]);
        let mut nested = Value::map();
        nested.set("step", "cp_wf_mixcolor");
        rec.set("timing", nested);
        for text in [to_json(&rec), to_json_pretty(&rec)] {
            assert_eq!(from_json(&text).unwrap(), rec, "text: {text}");
        }
    }

    #[test]
    fn compact_formatting() {
        let mut v = Value::map();
        v.set("a", 1).set("b", vec!["x", "y"]);
        assert_eq!(to_json(&v), r#"{"a":1,"b":["x","y"]}"#);
    }

    #[test]
    fn pretty_formatting_indents() {
        let mut v = Value::map();
        v.set("a", 1);
        assert_eq!(to_json_pretty(&v), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode ☃";
        let v = Value::Str(s.to_string());
        assert_eq!(from_json(&to_json(&v)).unwrap().as_str(), Some(s));
    }

    #[test]
    fn multibyte_runs_and_mixed_escapes_roundtrip() {
        // Multi-byte scalars adjacent to escapes exercise the run-based
        // string fast path at its boundaries.
        let s = "☃☃\"héllo\\☃\nénd☃";
        let v = Value::Str(s.to_string());
        assert_eq!(from_json(&to_json(&v)).unwrap().as_str(), Some(s));
    }

    #[test]
    fn megabyte_strings_parse_in_linear_time() {
        // Regression: per-character UTF-8 validation of the remaining input
        // made this quadratic (~50 s for the 1.8 MB hex-encoded plate
        // frames the remote backend ships). Linear parsing does a few MB in
        // well under a second even in debug builds.
        let hex: String = "a0f3".repeat(500_000);
        let json = format!("{{\"image_hex\": \"{hex}\"}}");
        let started = std::time::Instant::now();
        let v = from_json(&json).unwrap();
        assert_eq!(v.get("image_hex").and_then(Value::as_str).map(str::len), Some(2_000_000));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "2 MB string took {:?} — string parsing has gone super-linear",
            started.elapsed()
        );
    }

    #[test]
    fn parses_standard_constructs() {
        let v = from_json(r#" { "a" : [ 1 , -2.5e1 , true , null ] , "b" : {} } "#).unwrap();
        let a = v.get("a").unwrap().as_seq().unwrap();
        assert_eq!(a[0], Value::Int(1));
        assert_eq!(a[1], Value::Float(-25.0));
        assert_eq!(a[2], Value::Bool(true));
        assert!(a[3].is_null());
        assert_eq!(v.get("b").unwrap().as_map().unwrap().len(), 0);
    }

    #[test]
    fn unicode_escape() {
        let v = from_json(r#""snow☃""#).unwrap();
        assert_eq!(v.as_str(), Some("snow☃"));
    }

    #[test]
    fn error_reporting() {
        assert!(from_json("{").is_err());
        assert!(from_json("[1,]").is_err());
        assert!(from_json(r#"{"a":1,"a":2}"#).unwrap_err().msg.contains("duplicate"));
        assert!(from_json("[1] extra").unwrap_err().msg.contains("trailing"));
        let err = from_json("{\n\"a\": @\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_json(&Value::Float(f64::INFINITY)), "null");
    }
}
