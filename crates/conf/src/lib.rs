//! `sdl-conf` — the declarative-configuration substrate.
//!
//! The WEI platform (paper §2.2) describes workcells and workflows in YAML
//! and publishes run records as JSON. Rather than binding serde format
//! crates, this crate implements the needed subset from scratch:
//!
//! * [`Value`] — an ordered dynamic value tree;
//! * [`from_yaml`] / [`to_yaml`] — a YAML-subset parser and writer (block
//!   and flow collections, quoted scalars, comments);
//! * [`from_json`] / [`to_json`] / [`to_json_pretty`] — JSON reader/writer;
//! * [`lookup`] and the [`ValueExt`] typed accessors with path-qualified
//!   errors.
//!
//! # Example
//!
//! ```
//! use sdl_conf::{from_yaml, ValueExt};
//!
//! let doc = from_yaml("modules:\n  - name: ot2\n    tips: 96\n").unwrap();
//! assert_eq!(doc.req_str("modules.0.name").unwrap(), "ot2");
//! assert_eq!(doc.req_i64("modules.0.tips").unwrap(), 96);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod json;
mod path;
mod value;
mod yaml;

pub use error::{AccessError, ParseError};
pub use json::{from_json, to_json, to_json_pretty};
pub use path::{lookup, ValueExt};
pub use value::Value;
pub use yaml::{from_yaml, to_yaml};
