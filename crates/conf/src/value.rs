//! The dynamic value tree shared by the YAML and JSON front ends.
//!
//! Maps preserve insertion order so that rendered configs and published
//! records are deterministic (the portal and the tests depend on this).

use std::fmt;

/// A dynamically-typed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// YAML `null` / JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (decimal, 64-bit signed).
    Int(i64),
    /// Floating-point number (always finite in well-formed documents).
    Float(f64),
    /// String.
    Str(String),
    /// Sequence / array.
    Seq(Vec<Value>),
    /// Mapping with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for an empty map.
    pub fn map() -> Value {
        Value::Map(Vec::new())
    }

    /// Shorthand for an empty sequence.
    pub fn seq() -> Value {
        Value::Seq(Vec::new())
    }

    /// Insert (or replace) a key in a map value; panics if `self` is not a map.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Value {
        let key = key.into();
        match self {
            Value::Map(entries) => {
                let value = value.into();
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key, value));
                }
            }
            _ => panic!("Value::set on non-map"),
        }
        self
    }

    /// Append to a sequence value; panics if `self` is not a sequence.
    pub fn push(&mut self, value: impl Into<Value>) -> &mut Value {
        match self {
            Value::Seq(items) => items.push(value.into()),
            _ => panic!("Value::push on non-seq"),
        }
        self
    }

    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sequence lookup by index.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(i),
            _ => None,
        }
    }

    /// View as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as float; integers coerce.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// View as boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as sequence items.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// View as map entries.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::json::to_json(self))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Seq(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_pattern_constructs_trees() {
        let mut root = Value::map();
        root.set("name", "rpl_workcell").set("modules", vec!["pf400", "ot2"]);
        assert_eq!(root.get("name").and_then(Value::as_str), Some("rpl_workcell"));
        assert_eq!(root.get("modules").and_then(|m| m.idx(1)).and_then(Value::as_str), Some("ot2"));
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut m = Value::map();
        m.set("k", 1);
        m.set("k", 2);
        assert_eq!(m.get("k").and_then(Value::as_i64), Some(2));
        assert_eq!(m.as_map().unwrap().len(), 1);
    }

    #[test]
    fn as_f64_coerces_ints() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Value::Int(1);
        assert!(v.as_str().is_none());
        assert!(v.as_seq().is_none());
        assert!(v.as_map().is_none());
        assert!(v.get("k").is_none());
        assert!(v.idx(0).is_none());
        assert!(!v.is_null());
        assert_eq!(v.type_name(), "int");
    }

    #[test]
    #[should_panic(expected = "non-map")]
    fn set_on_seq_panics() {
        Value::seq().set("k", 1);
    }
}
