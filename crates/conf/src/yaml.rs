//! A YAML-subset parser and writer.
//!
//! The WEI platform describes workcells and workflows "using a declarative
//! YAML notation" (paper §2.2). This module implements the subset those
//! documents need — block maps and sequences by indentation, inline (flow)
//! sequences and maps on a single line, quoted and plain scalars, comments —
//! without bringing in a serde format crate (the declarative layer is itself
//! a substrate of this reproduction).
//!
//! Supported:
//! * block mappings `key: value` / `key:` + indented block;
//! * block sequences `- item` (including inline map start after the dash);
//! * flow collections `[1, 2, 3]` and `{a: 1, b: 2}` on one line;
//! * plain, single-quoted and double-quoted scalars (with `\n`, `\t`, `\\`,
//!   `\"` escapes in double quotes);
//! * `# comments`, blank lines, a leading `---` document marker;
//! * scalars typed as null (`null`/`~`/empty), bool, int, float, string.
//!
//! Not supported (rejected with a clear error where detectable): tabs in
//! indentation, anchors/aliases, multi-document streams, block scalars
//! (`|`/`>`), and complex (non-string) keys.

use crate::error::ParseError;
use crate::value::Value;

/// Parse a YAML document into a [`Value`].
pub fn from_yaml(src: &str) -> Result<Value, ParseError> {
    let lines = logical_lines(src)?;
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    // A one-line document that is neither a sequence item nor a map entry is
    // a bare scalar (e.g. a quoted string or a number).
    if lines.len() == 1 {
        let l = &lines[0];
        let is_seq = l.text == "-" || l.text.starts_with("- ");
        if !is_seq && !is_map_entry(&l.text) {
            return parse_scalar(&l.text, l.no);
        }
    }
    let mut p = Parser { lines, pos: 0 };
    let v = p.parse_block(p.lines[0].indent)?;
    if p.pos < p.lines.len() {
        let l = &p.lines[p.pos];
        return Err(ParseError::new(
            l.no,
            format!("unexpected content '{}' after document", l.text),
        ));
    }
    Ok(v)
}

/// Render a [`Value`] as a YAML document (block style, two-space indent).
pub fn to_yaml(v: &Value) -> String {
    let mut out = String::new();
    match v {
        Value::Map(_) | Value::Seq(_) => write_block(v, 0, &mut out),
        scalar => {
            out.push_str(&scalar_to_yaml(scalar));
            out.push('\n');
        }
    }
    out
}

#[derive(Debug)]
struct Line {
    indent: usize,
    text: String,
    no: usize,
}

/// Strip comments/blanks and compute indents.
fn logical_lines(src: &str) -> Result<Vec<Line>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let no = i + 1;
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        if line.trim() == "---" && out.is_empty() {
            continue; // document start marker
        }
        let mut indent = 0;
        for ch in line.chars() {
            match ch {
                ' ' => indent += 1,
                '\t' => return Err(ParseError::new(no, "tabs are not allowed in indentation")),
                _ => break,
            }
        }
        let body = strip_comment(&line[indent..]);
        let body = body.trim_end();
        if body.is_empty() {
            continue;
        }
        out.push(Line { indent, text: body.to_string(), no });
    }
    Ok(out)
}

/// Remove a trailing comment, respecting quotes. A `#` starts a comment only
/// at the start or after whitespace.
fn strip_comment(s: &str) -> &str {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_double => escaped = true,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'#' if !in_single
                && !in_double
                && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') =>
            {
                return &s[..i];
            }
            _ => {}
        }
    }
    s
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    /// Parse the block starting at `self.pos`, whose items sit at `indent`.
    fn parse_block(&mut self, indent: usize) -> Result<Value, ParseError> {
        let line = &self.lines[self.pos];
        if line.text == "-" || line.text.starts_with("- ") {
            self.parse_seq(indent)
        } else {
            self.parse_map(indent)
        }
    }

    fn parse_seq(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut items = Vec::new();
        while self.pos < self.lines.len() {
            let line = &self.lines[self.pos];
            if line.indent != indent {
                if line.indent > indent {
                    return Err(ParseError::new(
                        line.no,
                        "unexpected deeper indentation in sequence",
                    ));
                }
                break;
            }
            if !(line.text == "-" || line.text.starts_with("- ")) {
                break;
            }
            let no = line.no;
            let rest = if line.text == "-" { "" } else { line.text[2..].trim_start() };
            let rest = rest.to_string();
            self.pos += 1;
            if rest.is_empty() {
                // Item is a nested block (or null if nothing deeper).
                if self.pos < self.lines.len() && self.lines[self.pos].indent > indent {
                    let child_indent = self.lines[self.pos].indent;
                    items.push(self.parse_block(child_indent)?);
                } else {
                    items.push(Value::Null);
                }
            } else if is_map_entry(&rest) {
                // Inline map start after the dash: re-inject the remainder as
                // a virtual line at the item's child indent.
                let child_indent = indent + 2;
                self.lines.insert(self.pos, Line { indent: child_indent, text: rest, no });
                // Following lines of this item may be indented deeper than
                // `indent` but not exactly at child_indent (e.g. dash at 0,
                // item body at 1 space deeper); normalize only exact-depth
                // blocks — deeper ones still parse because parse_map uses the
                // first line's indent. Lines between indent+1 .. child_indent
                // would be ambiguous; YAML proper allows them, our subset
                // requires item bodies at `indent + 2`.
                items.push(self.parse_map(child_indent)?);
            } else {
                items.push(parse_scalar(&rest, no)?);
            }
        }
        Ok(Value::Seq(items))
    }

    fn parse_map(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut entries: Vec<(String, Value)> = Vec::new();
        while self.pos < self.lines.len() {
            let line = &self.lines[self.pos];
            if line.indent != indent {
                if line.indent > indent {
                    return Err(ParseError::new(
                        line.no,
                        "unexpected deeper indentation in mapping",
                    ));
                }
                break;
            }
            if line.text == "-" || line.text.starts_with("- ") {
                break;
            }
            let no = line.no;
            let text = line.text.clone();
            let (key, rest) = split_map_entry(&text).ok_or_else(|| {
                ParseError::new(no, format!("expected 'key: value', got '{text}'"))
            })?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(ParseError::new(no, format!("duplicate key '{key}'")));
            }
            self.pos += 1;
            let value = if rest.is_empty() {
                if self.pos < self.lines.len() && self.lines[self.pos].indent > indent {
                    let child_indent = self.lines[self.pos].indent;
                    self.parse_block(child_indent)?
                } else {
                    Value::Null
                }
            } else {
                parse_scalar(rest, no)?
            };
            entries.push((key, value));
        }
        Ok(Value::Map(entries))
    }
}

/// Does this line fragment look like `key: ...`?
fn is_map_entry(s: &str) -> bool {
    split_map_entry(s).is_some()
}

/// Split `key: value` into (key, value-str), respecting quoted keys.
/// Returns None if there is no top-level `: ` (or trailing `:`).
fn split_map_entry(s: &str) -> Option<(String, &str)> {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return None;
    }
    // Quoted key.
    if bytes[0] == b'"' || bytes[0] == b'\'' {
        let quote = bytes[0];
        let mut i = 1;
        let mut escaped = false;
        while i < bytes.len() {
            let b = bytes[i];
            if escaped {
                escaped = false;
            } else if b == b'\\' && quote == b'"' {
                escaped = true;
            } else if b == quote {
                break;
            }
            i += 1;
        }
        if i >= bytes.len() {
            return None; // unterminated quote: not a map entry
        }
        let key_src = &s[..=i];
        let rest = s[i + 1..].trim_start();
        let rest = rest.strip_prefix(':')?;
        let key = match parse_quoted(key_src) {
            Ok(k) => k,
            Err(_) => return None,
        };
        return Some((key, rest.trim_start()));
    }
    // Plain key: find the first ':' that is followed by space or EOL and not
    // inside a flow collection or quotes.
    let mut depth = 0i32;
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_double => escaped = true,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth -= 1,
            b':' if !in_single
                && !in_double
                && depth == 0
                && (i + 1 == bytes.len() || bytes[i + 1] == b' ') =>
            {
                let key = s[..i].trim();
                if key.is_empty() {
                    return None;
                }
                return Some((key.to_string(), s[i + 1..].trim_start()));
            }
            _ => {}
        }
    }
    None
}

/// Parse a scalar or a one-line flow collection.
fn parse_scalar(s: &str, no: usize) -> Result<Value, ParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Value::Null);
    }
    match s.as_bytes()[0] {
        b'[' | b'{' => {
            let mut f = FlowParser { src: s.as_bytes(), pos: 0, no };
            let v = f.parse_value()?;
            f.skip_ws();
            if f.pos != f.src.len() {
                return Err(ParseError::new(no, "trailing characters after flow collection"));
            }
            Ok(v)
        }
        b'"' | b'\'' => Ok(Value::Str(parse_quoted(s).map_err(|m| ParseError::new(no, m))?)),
        b'|' | b'>' => Err(ParseError::new(no, "block scalars (| and >) are not supported")),
        b'&' | b'*' => Err(ParseError::new(no, "anchors and aliases are not supported")),
        _ => Ok(plain_scalar(s)),
    }
}

/// Decode a quoted scalar (whole string must be the quoted token).
fn parse_quoted(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let quote = bytes[0];
    if bytes.len() < 2 || bytes[bytes.len() - 1] != quote {
        return Err("unterminated quoted string".into());
    }
    let inner = &s[1..s.len() - 1];
    if quote == b'\'' {
        // Single quotes: '' escapes a quote, nothing else is special.
        return Ok(inner.replace("''", "'"));
    }
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('0') => out.push('\0'),
            Some(other) => return Err(format!("unsupported escape '\\{other}'")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// Type a plain (unquoted) scalar.
fn plain_scalar(s: &str) -> Value {
    match s {
        "null" | "Null" | "NULL" | "~" => return Value::Null,
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        // Reject leading '+' and leading zeros ("007") to stay predictable.
        let ok = !s.starts_with('+')
            && (s.len() <= 1 || !s.starts_with('0'))
            && (s.len() <= 2 || !s.starts_with("-0"));
        if ok {
            return Value::Int(i);
        }
    }
    if looks_like_float(s) {
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
    }
    Value::Str(s.to_string())
}

fn looks_like_float(s: &str) -> bool {
    let mut has_digit = false;
    let mut has_marker = false;
    for c in s.chars() {
        match c {
            '0'..='9' => has_digit = true,
            '.' | 'e' | 'E' => has_marker = true,
            '+' | '-' => {}
            _ => return false,
        }
    }
    has_digit && has_marker
}

/// One-line flow-collection parser (`[..]`, `{..}`).
struct FlowParser<'a> {
    src: &'a [u8],
    pos: usize,
    no: usize,
}

impl<'a> FlowParser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.no, msg)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len()
            && (self.src[self.pos] == b' ' || self.src[self.pos] == b'\t')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'[') => self.parse_flow_seq(),
            Some(b'{') => self.parse_flow_map(),
            Some(b'"') | Some(b'\'') => {
                let tok = self.take_quoted()?;
                parse_quoted(&tok).map(Value::Str).map_err(|m| self.err(m))
            }
            Some(_) => {
                let tok = self.take_plain();
                Ok(plain_scalar(tok.trim()))
            }
            None => Err(self.err("unexpected end of flow collection")),
        }
    }

    fn parse_flow_seq(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                None => return Err(self.err("unterminated '['")),
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {}
                _ => return Err(self.err("expected ',' or ']' in flow sequence")),
            }
        }
    }

    fn parse_flow_map(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut entries: Vec<(String, Value)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                None => return Err(self.err("unterminated '{'")),
                _ => {}
            }
            let key = match self.peek() {
                Some(b'"') | Some(b'\'') => {
                    let tok = self.take_quoted()?;
                    parse_quoted(&tok).map_err(|m| self.err(m))?
                }
                _ => {
                    let start = self.pos;
                    while self.pos < self.src.len()
                        && !matches!(self.src[self.pos], b':' | b',' | b'}')
                    {
                        self.pos += 1;
                    }
                    std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?
                        .trim()
                        .to_string()
                }
            };
            if key.is_empty() {
                return Err(self.err("empty key in flow map"));
            }
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' in flow map"));
            }
            self.pos += 1;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {}
                _ => return Err(self.err("expected ',' or '}' in flow map")),
            }
        }
    }

    /// Take a quoted token including its quotes.
    fn take_quoted(&mut self) -> Result<String, ParseError> {
        let quote = self.src[self.pos];
        let start = self.pos;
        self.pos += 1;
        let mut escaped = false;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if escaped {
                escaped = false;
            } else if b == b'\\' && quote == b'"' {
                escaped = true;
            } else if b == quote {
                self.pos += 1;
                return Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned());
            }
            self.pos += 1;
        }
        Err(self.err("unterminated quoted string"))
    }

    /// Take a plain token up to a flow delimiter.
    fn take_plain(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() && !matches!(self.src[self.pos], b',' | b']' | b'}' | b':')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_block(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Map(entries) if entries.is_empty() => {
            out.push_str(&pad);
            out.push_str("{}\n");
        }
        Value::Seq(items) if items.is_empty() => {
            out.push_str(&pad);
            out.push_str("[]\n");
        }
        Value::Map(entries) => {
            for (k, val) in entries {
                out.push_str(&pad);
                out.push_str(&key_to_yaml(k));
                out.push(':');
                match val {
                    Value::Map(e) if !e.is_empty() => {
                        out.push('\n');
                        write_block(val, indent + 1, out);
                    }
                    Value::Seq(items) if !items.is_empty() => {
                        out.push('\n');
                        write_block(val, indent + 1, out);
                    }
                    _ => {
                        out.push(' ');
                        out.push_str(&scalar_to_yaml(val));
                        out.push('\n');
                    }
                }
            }
        }
        Value::Seq(items) => {
            for item in items {
                match item {
                    Value::Map(e) if !e.is_empty() => {
                        // Dash followed by the first entry inline.
                        out.push_str(&pad);
                        out.push_str("-\n");
                        write_block(item, indent + 1, out);
                    }
                    Value::Seq(inner) if !inner.is_empty() => {
                        out.push_str(&pad);
                        out.push_str("-\n");
                        write_block(item, indent + 1, out);
                    }
                    _ => {
                        out.push_str(&pad);
                        out.push_str("- ");
                        out.push_str(&scalar_to_yaml(item));
                        out.push('\n');
                    }
                }
            }
        }
        scalar => {
            out.push_str(&pad);
            out.push_str(&scalar_to_yaml(scalar));
            out.push('\n');
        }
    }
}

fn key_to_yaml(k: &str) -> String {
    if needs_quoting(k) {
        quote_double(k)
    } else {
        k.to_string()
    }
}

fn scalar_to_yaml(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format_float(*f),
        Value::Str(s) => {
            if needs_quoting(s) {
                quote_double(s)
            } else {
                s.clone()
            }
        }
        Value::Map(e) if e.is_empty() => "{}".to_string(),
        Value::Seq(s) if s.is_empty() => "[]".to_string(),
        _ => unreachable!("non-scalar passed to scalar_to_yaml"),
    }
}

fn format_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string(); // documents must stay parseable
    }
    let s = format!("{f:?}");
    debug_assert!(s.contains('.') || s.contains('e') || s.contains('E'));
    s
}

/// Would this string be misread if written plainly?
fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    if s.trim() != s {
        return true;
    }
    // Would be typed as something else.
    if !matches!(plain_scalar(s), Value::Str(_)) {
        return true;
    }
    let first = s.chars().next().unwrap();
    if matches!(
        first,
        '-' | '?'
            | '#'
            | '&'
            | '*'
            | '!'
            | '|'
            | '>'
            | '\''
            | '"'
            | '%'
            | '@'
            | '`'
            | '['
            | ']'
            | '{'
            | '}'
            | ','
    ) {
        return true;
    }
    if s.contains(": ") || s.ends_with(':') || s.contains(" #") {
        return true;
    }
    s.chars().any(|c| c.is_control())
}

fn quote_double(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_workcell_document() {
        let doc = r#"
# RPL workcell (paper Figure 1)
name: rpl_workcell
modules:
  - name: sciclops
    type: plate_crane
    config:
      towers: 4
  - name: pf400
    type: manipulator
options:
  retries: 3
  timeout: 12.5
  live: false
"#;
        let v = from_yaml(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("rpl_workcell"));
        let modules = v.get("modules").unwrap().as_seq().unwrap();
        assert_eq!(modules.len(), 2);
        assert_eq!(modules[0].get("name").unwrap().as_str(), Some("sciclops"));
        assert_eq!(modules[0].get("config").unwrap().get("towers").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("options").unwrap().get("timeout").unwrap().as_f64(), Some(12.5));
        assert_eq!(v.get("options").unwrap().get("live").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn scalar_typing() {
        let v =
            from_yaml("a: 3\nb: 3.5\nc: true\nd: null\ne: ~\nf: hello\ng: -7\nh: 1e3\n").unwrap();
        assert_eq!(v.get("a").unwrap(), &Value::Int(3));
        assert_eq!(v.get("b").unwrap(), &Value::Float(3.5));
        assert_eq!(v.get("c").unwrap(), &Value::Bool(true));
        assert!(v.get("d").unwrap().is_null());
        assert!(v.get("e").unwrap().is_null());
        assert_eq!(v.get("f").unwrap().as_str(), Some("hello"));
        assert_eq!(v.get("g").unwrap(), &Value::Int(-7));
        assert_eq!(v.get("h").unwrap(), &Value::Float(1000.0));
    }

    #[test]
    fn leading_zero_stays_string() {
        let v = from_yaml("id: 007\n").unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("007"));
    }

    #[test]
    fn quoted_strings_and_escapes() {
        let v = from_yaml(
            r#"a: "x: y # not a comment"
b: 'single ''quoted'''
c: "line\nbreak"
"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x: y # not a comment"));
        assert_eq!(v.get("b").unwrap().as_str(), Some("single 'quoted'"));
        assert_eq!(v.get("c").unwrap().as_str(), Some("line\nbreak"));
    }

    #[test]
    fn flow_collections() {
        let v = from_yaml("volumes: [1.5, 2, 3.25]\nwell: {row: A, col: 1}\nempty: []\nnone: {}\n")
            .unwrap();
        let vols = v.get("volumes").unwrap().as_seq().unwrap();
        assert_eq!(vols.len(), 3);
        assert_eq!(vols[1], Value::Int(2));
        assert_eq!(v.get("well").unwrap().get("row").unwrap().as_str(), Some("A"));
        assert_eq!(v.get("empty").unwrap().as_seq().unwrap().len(), 0);
        assert_eq!(v.get("none").unwrap().as_map().unwrap().len(), 0);
    }

    #[test]
    fn top_level_sequence() {
        let v = from_yaml("- alpha\n- 2\n- name: x\n  kind: y\n").unwrap();
        let items = v.as_seq().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("kind").unwrap().as_str(), Some("y"));
    }

    #[test]
    fn nested_sequences_under_dash() {
        let v = from_yaml("-\n  - 1\n  - 2\n- 3\n").unwrap();
        let items = v.as_seq().unwrap();
        assert_eq!(items[0].as_seq().unwrap().len(), 2);
        assert_eq!(items[1], Value::Int(3));
    }

    #[test]
    fn document_marker_and_comments() {
        let v = from_yaml("---\n# comment only\nkey: value # trailing\n").unwrap();
        assert_eq!(v.get("key").unwrap().as_str(), Some("value"));
    }

    #[test]
    fn errors_have_line_numbers() {
        let err = from_yaml("ok: 1\n\tbad: 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_yaml("a: 1\na: 2\n").unwrap_err();
        assert!(err.msg.contains("duplicate"));
        let err = from_yaml("a: |\n  block\n").unwrap_err();
        assert!(err.msg.contains("block scalars"));
        let err = from_yaml("a: [1, 2\n").unwrap_err();
        assert!(err.msg.contains("']'") || err.msg.contains("unterminated"), "{}", err.msg);
    }

    #[test]
    fn empty_document_is_null() {
        assert!(from_yaml("").unwrap().is_null());
        assert!(from_yaml("# only a comment\n").unwrap().is_null());
    }

    #[test]
    fn writer_roundtrips_a_tree() {
        let mut root = Value::map();
        root.set("name", "demo");
        let mut m = Value::map();
        m.set("count", 3).set("rate", 0.25).set("on", true).set("note", Value::Null);
        root.set("inner", m);
        root.set("list", vec![1i64, 2, 3]);
        let mut weird = Value::map();
        weird.set("needs quoting", "yes: it does # really");
        weird.set("number-ish", "007");
        root.set("strings", weird);
        let text = to_yaml(&root);
        let back = from_yaml(&text).unwrap();
        assert_eq!(back, root, "yaml:\n{text}");
    }

    #[test]
    fn writer_handles_seq_of_maps() {
        let mut a = Value::map();
        a.set("x", 1);
        let mut b = Value::map();
        b.set("y", 2.5);
        let root = Value::Seq(vec![a, b]);
        let text = to_yaml(&root);
        assert_eq!(from_yaml(&text).unwrap(), root);
    }

    #[test]
    fn colon_inside_flow_value() {
        let v = from_yaml("pos: {x: 1, y: 2}\n").unwrap();
        assert_eq!(v.get("pos").unwrap().get("y").unwrap().as_i64(), Some(2));
    }
}
