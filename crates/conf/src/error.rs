//! Parse and access errors with source positions.

use std::fmt;

/// A parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in the source document (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, msg: impl Into<String>) -> ParseError {
        ParseError { line, msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.msg)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

/// A typed-access error produced by [`crate::path::lookup`] helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessError {
    /// The dotted path that failed.
    pub path: String,
    /// What went wrong.
    pub msg: String,
}

impl AccessError {
    pub(crate) fn new(path: impl Into<String>, msg: impl Into<String>) -> AccessError {
        AccessError { path: path.into(), msg: msg.into() }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error at '{}': {}", self.path, self.msg)
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new(12, "bad indent");
        assert_eq!(e.to_string(), "parse error at line 12: bad indent");
        let eof = ParseError::new(0, "unexpected end");
        assert_eq!(eof.to_string(), "parse error: unexpected end");
        let a = AccessError::new("modules.0.name", "expected string");
        assert!(a.to_string().contains("modules.0.name"));
    }
}
