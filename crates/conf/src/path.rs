//! Dotted-path navigation and typed extraction.
//!
//! Config consumers (the WEI engine, the application) read values through
//! paths like `modules.2.config.towers`, getting errors that name the full
//! path rather than a bare "expected string".

use crate::error::AccessError;
use crate::value::Value;

/// Navigate a dotted path; numeric segments index sequences.
pub fn lookup<'a>(root: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = root;
    if path.is_empty() {
        return Some(cur);
    }
    for seg in path.split('.') {
        cur = match cur {
            Value::Map(_) => cur.get(seg)?,
            Value::Seq(_) => cur.idx(seg.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(cur)
}

/// Typed accessors over a root value, producing path-qualified errors.
pub trait ValueExt {
    /// Value at `path`, or an error naming the path.
    fn req(&self, path: &str) -> Result<&Value, AccessError>;
    /// String at `path`.
    fn req_str(&self, path: &str) -> Result<&str, AccessError>;
    /// Integer at `path`.
    fn req_i64(&self, path: &str) -> Result<i64, AccessError>;
    /// Float (or int) at `path`.
    fn req_f64(&self, path: &str) -> Result<f64, AccessError>;
    /// Boolean at `path`.
    fn req_bool(&self, path: &str) -> Result<bool, AccessError>;
    /// Sequence at `path`.
    fn req_seq(&self, path: &str) -> Result<&[Value], AccessError>;
    /// Optional string at `path` (None when absent or null).
    fn opt_str(&self, path: &str) -> Option<&str>;
    /// Optional float at `path`.
    fn opt_f64(&self, path: &str) -> Option<f64>;
    /// Optional integer at `path`.
    fn opt_i64(&self, path: &str) -> Option<i64>;
    /// Optional bool at `path`.
    fn opt_bool(&self, path: &str) -> Option<bool>;
}

impl ValueExt for Value {
    fn req(&self, path: &str) -> Result<&Value, AccessError> {
        lookup(self, path).ok_or_else(|| AccessError::new(path, "missing"))
    }

    fn req_str(&self, path: &str) -> Result<&str, AccessError> {
        let v = self.req(path)?;
        v.as_str().ok_or_else(|| {
            AccessError::new(path, format!("expected string, got {}", v.type_name()))
        })
    }

    fn req_i64(&self, path: &str) -> Result<i64, AccessError> {
        let v = self.req(path)?;
        v.as_i64()
            .ok_or_else(|| AccessError::new(path, format!("expected int, got {}", v.type_name())))
    }

    fn req_f64(&self, path: &str) -> Result<f64, AccessError> {
        let v = self.req(path)?;
        v.as_f64().ok_or_else(|| {
            AccessError::new(path, format!("expected number, got {}", v.type_name()))
        })
    }

    fn req_bool(&self, path: &str) -> Result<bool, AccessError> {
        let v = self.req(path)?;
        v.as_bool()
            .ok_or_else(|| AccessError::new(path, format!("expected bool, got {}", v.type_name())))
    }

    fn req_seq(&self, path: &str) -> Result<&[Value], AccessError> {
        let v = self.req(path)?;
        v.as_seq().ok_or_else(|| {
            AccessError::new(path, format!("expected sequence, got {}", v.type_name()))
        })
    }

    fn opt_str(&self, path: &str) -> Option<&str> {
        lookup(self, path).and_then(Value::as_str)
    }

    fn opt_f64(&self, path: &str) -> Option<f64> {
        lookup(self, path).and_then(Value::as_f64)
    }

    fn opt_i64(&self, path: &str) -> Option<i64> {
        lookup(self, path).and_then(Value::as_i64)
    }

    fn opt_bool(&self, path: &str) -> Option<bool> {
        lookup(self, path).and_then(Value::as_bool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yaml::from_yaml;

    fn doc() -> Value {
        from_yaml(
            "name: cell\nmodules:\n  - name: ot2\n    config:\n      tips: 96\n  - name: pf400\nrate: 2.5\nlive: true\n",
        )
        .unwrap()
    }

    #[test]
    fn lookup_traverses_maps_and_seqs() {
        let d = doc();
        assert_eq!(lookup(&d, "modules.0.config.tips").unwrap().as_i64(), Some(96));
        assert_eq!(lookup(&d, "modules.1.name").unwrap().as_str(), Some("pf400"));
        assert!(lookup(&d, "modules.5").is_none());
        assert!(lookup(&d, "modules.x").is_none());
        assert!(lookup(&d, "name.deeper").is_none());
        assert_eq!(lookup(&d, "").unwrap(), &d);
    }

    #[test]
    fn req_accessors_succeed() {
        let d = doc();
        assert_eq!(d.req_str("name").unwrap(), "cell");
        assert_eq!(d.req_i64("modules.0.config.tips").unwrap(), 96);
        assert_eq!(d.req_f64("rate").unwrap(), 2.5);
        assert_eq!(d.req_f64("modules.0.config.tips").unwrap(), 96.0);
        assert!(d.req_bool("live").unwrap());
        assert_eq!(d.req_seq("modules").unwrap().len(), 2);
    }

    #[test]
    fn req_accessors_report_paths() {
        let d = doc();
        let err = d.req_str("modules.0.config.tips").unwrap_err();
        assert!(err.to_string().contains("modules.0.config.tips"));
        assert!(err.msg.contains("expected string, got int"));
        assert_eq!(d.req("nope.nope").unwrap_err().msg, "missing");
    }

    #[test]
    fn optional_accessors() {
        let d = doc();
        assert_eq!(d.opt_str("name"), Some("cell"));
        assert_eq!(d.opt_str("missing"), None);
        assert_eq!(d.opt_f64("rate"), Some(2.5));
        assert_eq!(d.opt_i64("modules.0.config.tips"), Some(96));
        assert_eq!(d.opt_bool("live"), Some(true));
        assert_eq!(d.opt_bool("rate"), None);
    }
}
