//! Property tests: YAML and JSON round-trips over generated value trees.

use proptest::prelude::*;
use sdl_conf::{from_json, from_yaml, to_json, to_json_pretty, to_yaml, Value};

/// Strings over a broad printable alphabet, including YAML-hostile content.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,24}").unwrap()
}

fn arb_key() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z_][a-zA-Z0-9_ .:#-]{0,15}").unwrap()
}

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12..1e12f64).prop_map(Value::Float),
        arb_string().prop_map(Value::Str),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::Seq),
            proptest::collection::vec((arb_key(), inner), 0..5).prop_map(|entries| {
                // Deduplicate keys: duplicate keys are a parse error by design.
                let mut seen = std::collections::HashSet::new();
                Value::Map(entries.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect())
            }),
        ]
    })
}

proptest! {
    /// Any generated tree survives JSON serialization (compact and pretty).
    #[test]
    fn json_roundtrip(v in arb_value()) {
        prop_assert_eq!(&from_json(&to_json(&v)).unwrap(), &v);
        prop_assert_eq!(&from_json(&to_json_pretty(&v)).unwrap(), &v);
    }

    /// Any generated tree survives YAML serialization.
    #[test]
    fn yaml_roundtrip(v in arb_value()) {
        let text = to_yaml(&v);
        let back = from_yaml(&text).unwrap();
        prop_assert_eq!(&back, &v, "document was:\n{}", text);
    }

    /// The YAML parser never panics on arbitrary printable input.
    #[test]
    fn yaml_parser_total(s in proptest::string::string_regex("[ -~\\n]{0,200}").unwrap()) {
        let _ = from_yaml(&s);
    }

    /// The JSON parser never panics on arbitrary input.
    #[test]
    fn json_parser_total(s in any::<String>()) {
        let _ = from_json(&s);
    }

    /// JSON is a valid interchange for YAML flow values: a JSON document our
    /// writer produces also parses as a YAML scalar line where applicable.
    #[test]
    fn ints_and_floats_keep_type(i in any::<i64>(), f in -1e9..1e9f64) {
        let doc = format!("i: {i}\nf: {f:?}\n");
        let v = from_yaml(&doc).unwrap();
        prop_assert_eq!(v.req("i").unwrap(), &Value::Int(i));
        match v.req("f").unwrap() {
            Value::Float(g) => prop_assert_eq!(*g, f),
            Value::Int(g) => prop_assert_eq!(*g as f64, f),
            other => prop_assert!(false, "unexpected type {:?}", other),
        }
    }
}

use sdl_conf::ValueExt;
