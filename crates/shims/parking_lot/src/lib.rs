//! Minimal in-repo stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API shape: `lock()`,
//! `read()` and `write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered transparently instead of propagating a panic
//! as a secondary error.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now (`parking_lot`'s
    /// `Option` shape, recovering poisoned locks like [`Mutex::lock`]).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
