//! Minimal in-repo stand-in for `crossbeam`.
//!
//! * [`thread::scope`] — the crossbeam 0.8 scoped-thread API, implemented
//!   over `std::thread::scope`;
//! * [`channel`] — `unbounded()` channels with cloneable senders,
//!   implemented over `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Scoped threads with the crossbeam 0.8 API shape.
pub mod thread {
    use std::thread as std_thread;

    /// Spawns scoped threads; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this block. The closure receives the
        /// scope (unused by this workspace, kept for API compatibility).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns. Always `Ok` (a
    /// panicking child propagates when its handle is joined, as with
    /// `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Channels with the crossbeam API shape over `std::sync::mpsc`.
pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block for the next message; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
