//! Minimal in-repo stand-in for `criterion`.
//!
//! Benchmarks written against the criterion 0.5 surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `Bencher::iter`,
//! `iter_batched`, `black_box`, `BenchmarkId`) run unchanged: each benchmark
//! is timed over a fixed number of wall-clock samples and a one-line summary
//! (mean ± stddev, plus derived throughput) is printed. There is no HTML
//! report, outlier analysis or statistical regression machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` recreates per-iteration inputs (accepted for API
/// compatibility; batches are always re-created per iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small cheap inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations (seconds).
    measurements: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measurements.push(start.elapsed().as_secs_f64());
        }
    }

    /// Time `routine` with a fresh input from `setup` each iteration
    /// (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measurements.push(start.elapsed().as_secs_f64());
        }
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn report(group: &str, id: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
        / samples.len().max(2).saturating_sub(1) as f64;
    let name = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  ({:.1} elem/s)", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / mean / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{name:<40} time: [{} ± {}]{extra}", fmt_duration(mean), fmt_duration(var.sqrt()));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, measurements: Vec::new() };
        f(&mut b);
        report(&self.name, &id.into().id, &b.measurements, self.throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples, measurements: Vec::new() };
        f(&mut b, input);
        report(&self.name, &id.into().id, &b.measurements, self.throughput);
        self
    }

    /// Finish the group (no-op; prints happen eagerly).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Default configuration (also what `criterion_group!` constructs).
    pub fn configure_from_args(self) -> Criterion {
        let samples =
            std::env::var("CRITERION_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(20);
        Criterion { samples }
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 20 } else { self.samples };
        BenchmarkGroup { name: name.into(), samples, throughput: None, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.samples == 0 { 20 } else { self.samples };
        let mut b = Bencher { samples, measurements: Vec::new() };
        f(&mut b);
        report("", &id.into().id, &b.measurements, None);
        self
    }

    /// Final-summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(5e-9).contains("ns"));
        assert!(fmt_duration(5e-5).contains("µs"));
        assert!(fmt_duration(5e-2).contains("ms"));
        assert!(fmt_duration(2.0).contains(" s"));
    }
}
