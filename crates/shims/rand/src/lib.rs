//! Minimal in-repo stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides exactly what this workspace uses: [`rngs::StdRng`] (a
//! deterministic xoshiro256++ generator, seedable from a `u64`), the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, the [`distributions`] module
//! with [`distributions::Standard`], and [`seq::SliceRandom`].
//!
//! Determinism notes: the stream produced for a given seed is fixed by this
//! implementation (it does not bit-match crates.io `rand`, which nothing in
//! this workspace requires) and is identical across platforms, which the
//! reproducibility suite does require.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counter-based (order-independent) randomness.
///
/// A sequential generator forces every consumer into one serial draw order;
/// a *counter-based* field instead derives each variate directly from
/// `(seed, counter)` through a stateless splitmix-style hash, so any subset
/// of the stream can be evaluated in any order — or in parallel — with
/// bit-identical results. This is what makes tiled parallel rendering
/// deterministic at any tile size and thread count.
pub mod counter {
    /// The splitmix64 finalizer: a full-avalanche bijective mix of 64 bits.
    #[inline]
    pub fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The `index`-th word of the stream keyed by `seed`: the splitmix64
    /// construction (finalize `seed + index·gamma`) evaluated at an
    /// arbitrary position in O(1), with no shared state. (A sequential
    /// splitmix64 generator pre-increments before finalizing, so its
    /// output at position `i` is `hash(seed, i + 1)`.)
    #[inline]
    pub fn hash(seed: u64, index: u64) -> u64 {
        mix64(seed.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Map 64 random bits to a uniform f64 in the half-open interval
    /// `[0, 1)` via the mantissa trick: plant 52 random bits under a fixed
    /// exponent to build a float in `[1, 2)`, then subtract 1. Unlike the
    /// shift-and-scale construction this needs no u64→f64 conversion, so
    /// it auto-vectorizes — which the tiled renderer's noise field relies
    /// on.
    #[inline]
    pub fn unit_f64(bits: u64) -> f64 {
        f64::from_bits(0x3ff0_0000_0000_0000 | (bits >> 12)) - 1.0
    }

    /// Map 64 random bits to a uniform f64 in the half-open interval
    /// `(0, 1]` — the safe domain for `ln` in Box–Muller transforms. Same
    /// mantissa construction as [`unit_f64`], mirrored about 1.
    #[inline]
    pub fn unit_f64_open0(bits: u64) -> f64 {
        2.0 - f64::from_bits(0x3ff0_0000_0000_0000 | (bits >> 12))
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state must not be all zero.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 0x6a09_e667_f3bc_c909, 0xbb67_ae85_84ca_a73b, 1];
            }
            StdRng { s }
        }
    }
}

/// Distributions of random values.
pub mod distributions {
    use super::{Rng, RngCore};
    use std::marker::PhantomData;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for primitives: uniform over all values
    /// for integers, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Iterator of samples, returned by [`Rng::sample_iter`].
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

use distributions::{DistIter, Distribution, Standard};

/// A range that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard.sample(&mut Wrap(rng));
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard.sample(&mut Wrap(rng));
                lo + unit * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Adapter giving `&mut dyn RngCore`-ish access the `Rng` methods that
/// distribution sampling needs.
struct Wrap<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for Wrap<'_, R> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// High-level generator interface (blanket-implemented for all [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }

    /// Draw from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Consume the generator into an infinite iterator of samples.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter { distr, rng: self, _marker: std::marker::PhantomData }
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random sequence operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Crates.io `rand` re-exports this as the prelude; mirror the common names.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_iter_draws() {
        let rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = rng.sample_iter(crate::distributions::Standard).take(4).collect();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn counter_hash_is_stateless_and_seed_keyed() {
        use crate::counter::hash;
        assert_eq!(hash(7, 123), hash(7, 123));
        assert_ne!(hash(7, 123), hash(8, 123));
        assert_ne!(hash(7, 123), hash(7, 124));
        // Order independence is structural (no state), but make the point:
        // evaluating indices backwards reproduces the forward values.
        let fwd: Vec<u64> = (0..64).map(|i| hash(42, i)).collect();
        let mut bwd: Vec<u64> = (0..64).rev().map(|i| hash(42, i)).collect();
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn counter_hash_avalanches() {
        use crate::counter::hash;
        // Flipping one counter bit should flip roughly half the output bits.
        let mut total = 0u32;
        for i in 0..64u64 {
            total += (hash(1, i) ^ hash(1, i ^ 1)).count_ones();
        }
        let mean = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&mean), "weak avalanche: mean {mean} bits");
    }

    #[test]
    fn counter_units_stay_in_their_intervals() {
        use crate::counter::{hash, unit_f64, unit_f64_open0};
        for i in 0..4096u64 {
            let b = hash(3, i);
            let u = unit_f64(b);
            assert!((0.0..1.0).contains(&u), "unit_f64 out of [0,1): {u}");
            let v = unit_f64_open0(b);
            assert!(v > 0.0 && v <= 1.0, "unit_f64_open0 out of (0,1]: {v}");
        }
        assert_eq!(unit_f64(0), 0.0);
        assert_eq!(unit_f64_open0(0), 1.0);
        assert!(unit_f64_open0(u64::MAX) > 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }
}
