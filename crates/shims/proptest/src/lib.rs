//! Minimal in-repo stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, `boxed`,
//! `prop_recursive`; ranges, tuples, [`Just`] and `&str` regexes as
//! strategies; [`collection::vec`]; [`string::string_regex`]; `any::<T>()`;
//! and the [`proptest!`]/[`prop_assert!`]/[`prop_oneof!`] macros.
//!
//! Semantics: each test body runs for a fixed number of deterministic
//! random cases (default 32, override with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`). Failures panic
//! with the case's inputs via the normal assert machinery; there is no
//! shrinking.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG strategies draw from.
pub type SampleRng = StdRng;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Construct the deterministic case RNG (used by the `proptest!` macro so
/// expansion sites do not need `rand` in scope).
pub fn new_rng(seed: u64) -> SampleRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministic per-test seed derived from the test's full name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { sample: Rc::new(move |rng| self.sample(rng)) }
    }

    /// Recursive structures: `recurse` receives the strategy for the level
    /// below and returns the branch-node strategy. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            strat = one_of(vec![base.clone(), recurse(strat).boxed()]);
        }
        strat
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut SampleRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut SampleRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { sample: Rc::clone(&self.sample) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SampleRng) -> T {
        (self.sample)(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` engine).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "one_of: no options");
    BoxedStrategy {
        sample: Rc::new(move |rng| {
            let i = rng.gen_range(0..options.len());
            options[i].sample(rng)
        }),
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut SampleRng) -> String {
        string::compile(self).expect("invalid inline regex strategy").sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy { sample: Rc::new(|rng| rng.gen::<$t>()) }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary() -> BoxedStrategy<f64> {
        BoxedStrategy {
            sample: Rc::new(|rng| {
                // Mostly moderate magnitudes, occasionally extreme.
                let mag: f64 = rng.gen_range(-1e9..1e9);
                if rng.gen_bool(0.05) {
                    mag * 1e200
                } else {
                    mag
                }
            }),
        }
    }
}

impl Arbitrary for String {
    fn arbitrary() -> BoxedStrategy<String> {
        BoxedStrategy {
            sample: Rc::new(|rng| {
                let len = rng.gen_range(0..32usize);
                (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.85) {
                            // Printable ASCII plus whitespace controls.
                            char::from(rng.gen_range(0x20u8..0x7f))
                        } else if rng.gen_bool(0.5) {
                            ['\n', '\t', '\r', '"', '\\', '\u{0}'][rng.gen_range(0..6usize)]
                        } else {
                            char::from_u32(rng.gen_range(0xa0u32..0x2_00d7)).unwrap_or('□')
                        }
                    })
                    .collect()
            }),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, SampleRng, Strategy};
    use rand::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// Element-count specification for [`vec()`](vec()).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// A vector of values drawn from `element`, with a length in `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let size = size.into();
        BoxedStrategy {
            sample: Rc::new(move |rng: &mut SampleRng| {
                let n = rng.gen_range(size.lo..size.hi);
                (0..n).map(|_| element.sample(rng)).collect()
            }),
        }
    }
}

/// String strategies (mini regex subset).
pub mod string {
    use super::{BoxedStrategy, SampleRng};
    use rand::Rng;
    use std::rc::Rc;

    /// Error from [`string_regex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "bad regex strategy: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize, // inclusive
    }

    /// Parse the supported regex subset: literals, `[...]` classes with
    /// ranges and `\n`/`\t`/`\\` escapes, and `{m}`/`{m,n}` quantifiers.
    pub(super) fn compile(pattern: &str) -> Result<Compiled, Error> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut items: Vec<char> = Vec::new();
                    for item in chars.by_ref() {
                        if item == ']' {
                            break;
                        }
                        items.push(item);
                    }
                    let mut i = 0;
                    while i < items.len() {
                        let ch = match items[i] {
                            '\\' if i + 1 < items.len() => {
                                i += 1;
                                match items[i] {
                                    'n' => '\n',
                                    't' => '\t',
                                    'r' => '\r',
                                    other => other,
                                }
                            }
                            other => other,
                        };
                        // Range `a-z` when a `-` sits between two chars.
                        if i + 2 < items.len() && items[i + 1] == '-' && items[i + 2] != ']' {
                            let hi = items[i + 2];
                            if (ch as u32) > (hi as u32) {
                                return Err(Error(format!("bad range {ch}-{hi}")));
                            }
                            for code in (ch as u32)..=(hi as u32) {
                                if let Some(c) = char::from_u32(code) {
                                    set.push(c);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(ch);
                            i += 1;
                        }
                    }
                    if set.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    set
                }
                '\\' => {
                    let esc = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    vec![match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }]
                }
                '{' | '}' | ']' => return Err(Error(format!("unexpected '{c}'"))),
                other => vec![other],
            };
            // Optional quantifier.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                let parts: Vec<&str> = spec.split(',').collect();
                let parse = |s: &str| {
                    s.trim().parse::<usize>().map_err(|_| Error(format!("bad bound '{s}'")))
                };
                match parts.as_slice() {
                    [n] => {
                        let n = parse(n)?;
                        (n, n)
                    }
                    [lo, hi] => (parse(lo)?, parse(hi)?),
                    _ => return Err(Error(format!("bad quantifier '{{{spec}}}'"))),
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(Error("quantifier min > max".into()));
            }
            atoms.push(Atom { chars: set, min, max });
        }
        Ok(Compiled { atoms })
    }

    /// A compiled pattern.
    #[derive(Debug, Clone)]
    pub struct Compiled {
        atoms: Vec<Atom>,
    }

    impl Compiled {
        pub(super) fn sample(&self, rng: &mut SampleRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.gen_range(atom.min..=atom.max);
                for _ in 0..n {
                    out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
                }
            }
            out
        }
    }

    /// Strings matching the given (subset) regex.
    pub fn string_regex(pattern: &str) -> Result<BoxedStrategy<String>, Error> {
        let compiled = compile(pattern)?;
        Ok(BoxedStrategy { sample: Rc::new(move |rng: &mut SampleRng| compiled.sample(rng)) })
    }
}

/// The commonly imported names.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::new_rng(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)));
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_sample() {
        let mut rng = crate::SampleRng::seed_from_u64(1);
        let s = (0..10i64, 0.0..1.0f64).prop_map(|(a, b)| (a, b));
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!((0..10).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = crate::SampleRng::seed_from_u64(2);
        let s = crate::string::string_regex("[a-c]{2,4}").unwrap();
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)));
        }
        let lead = crate::string::string_regex("[a-b_][0-9]{0,2}").unwrap();
        for _ in 0..50 {
            let v = lead.sample(&mut rng);
            assert!(v.starts_with(['a', 'b', '_']));
        }
    }

    #[test]
    fn vec_and_oneof() {
        let mut rng = crate::SampleRng::seed_from_u64(3);
        let s = crate::collection::vec(prop_oneof![Just(1), Just(2)], 0..5);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn the_macro_works(x in 0u32..100, label in "[a-z]{1,3}") {
            prop_assert!(x < 100);
            prop_assert!(!label.is_empty() && label.len() <= 3, "bad label {label}");
        }
    }
}
