//! Minimal in-repo stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer backed by an
//! `Arc<[u8]>`. Only the surface this workspace uses is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "… ({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
    }
}
