//! Concurrency stress: many producers hammering the publication pipeline
//! and portal at once (the portal is shared with a live reader in the CLI).

use bytes::Bytes;
use sdl_conf::Value;
use sdl_datapub::{AcdcPortal, BlobStore, FlowJob, PublishFlow};
use std::sync::Arc;

fn record(producer: usize, i: usize) -> Value {
    let mut v = Value::map();
    v.set("kind", "sample");
    v.set("experiment_id", format!("exp-{producer}"));
    v.set("sample", i as i64);
    v
}

#[test]
fn parallel_producers_lose_nothing() {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let flow = Arc::new(PublishFlow::start(Arc::clone(&portal), Arc::clone(&store)));

    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 200;
    crossbeam::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let flow = Arc::clone(&flow);
            scope.spawn(move |_| {
                for i in 0..PER_PRODUCER {
                    let image = if i % 10 == 0 {
                        Some(Bytes::from(vec![(p * 31 + i) as u8; 128]))
                    } else {
                        None
                    };
                    flow.publish(FlowJob { record: record(p, i), image });
                }
            });
        }
    })
    .unwrap();
    flow.flush();

    assert_eq!(portal.len(), PRODUCERS * PER_PRODUCER);
    for p in 0..PRODUCERS {
        assert_eq!(portal.find("experiment_id", &format!("exp-{p}")).len(), PER_PRODUCER);
    }
    let stats = flow.stats();
    assert_eq!(stats.published, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.blobs, (PRODUCERS * PER_PRODUCER / 10) as u64);
}

#[test]
fn readers_and_writers_interleave_safely() {
    let portal = Arc::new(AcdcPortal::new());
    crossbeam::thread::scope(|scope| {
        // Writer thread.
        let writer_portal = Arc::clone(&portal);
        scope.spawn(move |_| {
            for i in 0..500 {
                writer_portal.ingest(record(0, i));
            }
        });
        // Concurrent readers never observe torn state (they may observe any
        // prefix of the writes).
        for _ in 0..3 {
            let reader_portal = Arc::clone(&portal);
            scope.spawn(move |_| {
                let mut last = 0;
                for _ in 0..200 {
                    let n = reader_portal.len();
                    assert!(n >= last, "record count must be monotone");
                    last = n;
                    let found = reader_portal.find("kind", "sample");
                    assert!(found.len() <= 500);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(portal.len(), 500);
}
