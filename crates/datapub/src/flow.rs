//! The publication pipeline — the Globus-flow substitute.
//!
//! Publication on the real system is asynchronous: the application fires a
//! flow and keeps running while Globus transfers the image, ingests the
//! record and updates the search index. [`PublishFlow`] reproduces that: a
//! background worker (crossbeam channel + thread) runs the three flow steps
//! — Transfer (blob store), Ingest (JSON validation), Index (portal) — per
//! job, with delivery guaranteed by `flush`/`close`.

use crate::portal::AcdcPortal;
use crate::store::{BlobRef, BlobStore};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use sdl_conf::{from_json, to_json, Value};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One publication job.
#[derive(Debug)]
pub struct FlowJob {
    /// The record to ingest.
    pub record: Value,
    /// Optional image payload; its blob reference is patched into the
    /// record's `image_ref` field after transfer.
    pub image: Option<Bytes>,
}

/// Pipeline statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowStats {
    /// Jobs published end-to-end.
    pub published: u64,
    /// Jobs that failed validation.
    pub failed: u64,
    /// Blobs transferred.
    pub blobs: u64,
}

enum Msg {
    Job(Box<FlowJob>),
    Flush(Sender<()>),
}

/// A running publication pipeline.
pub struct PublishFlow {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<()>>,
    stats: Arc<Mutex<FlowStats>>,
    /// The destination portal.
    pub portal: Arc<AcdcPortal>,
    /// The destination blob store.
    pub store: Arc<BlobStore>,
}

impl PublishFlow {
    /// Start the pipeline worker.
    pub fn start(portal: Arc<AcdcPortal>, store: Arc<BlobStore>) -> PublishFlow {
        let (tx, rx) = unbounded::<Msg>();
        let stats = Arc::new(Mutex::new(FlowStats::default()));
        let worker_portal = Arc::clone(&portal);
        let worker_store = Arc::clone(&store);
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("publish-flow".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Job(job) => {
                            let outcome = run_flow(*job, &worker_portal, &worker_store);
                            let mut s = worker_stats.lock();
                            match outcome {
                                Ok(with_blob) => {
                                    s.published += 1;
                                    if with_blob {
                                        s.blobs += 1;
                                    }
                                }
                                Err(_) => s.failed += 1,
                            }
                        }
                        Msg::Flush(done) => {
                            let _ = done.send(());
                        }
                    }
                }
            })
            .expect("spawn publish worker");
        PublishFlow { tx, worker: Some(worker), stats, portal, store }
    }

    /// Enqueue a job (returns immediately).
    pub fn publish(&self, job: FlowJob) {
        let _ = self.tx.send(Msg::Job(Box::new(job)));
    }

    /// Block until every job enqueued so far has been processed.
    pub fn flush(&self) {
        let (done_tx, done_rx) = unbounded();
        if self.tx.send(Msg::Flush(done_tx)).is_ok() {
            let _ = done_rx.recv();
        }
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> FlowStats {
        *self.stats.lock()
    }

    /// Flush, stop the worker and return final statistics.
    pub fn close(self) -> FlowStats {
        self.flush();
        let stats = *self.stats.lock();
        drop(self); // Drop closes the channel and joins the worker.
        stats
    }
}

impl Drop for PublishFlow {
    fn drop(&mut self) {
        if let Some(h) = self.worker.take() {
            let (dummy_tx, _dummy_rx) = unbounded();
            let tx = std::mem::replace(&mut self.tx, dummy_tx);
            drop(tx);
            let _ = h.join();
        }
    }
}

/// The three flow steps. Returns whether a blob was transferred.
fn run_flow(job: FlowJob, portal: &AcdcPortal, store: &BlobStore) -> Result<bool, String> {
    let mut record = job.record;

    // Step 1: Transfer — move the image into durable storage.
    let mut with_blob = false;
    if let Some(image) = job.image {
        let r: BlobRef = store.put(image);
        record.set("image_ref", r.0.as_str());
        with_blob = true;
    }

    // Step 2: Ingest — records must survive a serialization roundtrip
    // (the wire format of the real flow).
    let wire = to_json(&record);
    let validated = from_json(&wire).map_err(|e| e.to_string())?;

    // Step 3: Index.
    portal.ingest(validated);
    Ok(with_blob)
}

/// Synchronous single-job publication (used by tests and by deterministic
/// runs that disable the background worker).
pub fn publish_sync(job: FlowJob, portal: &AcdcPortal, store: &BlobStore) -> Result<(), String> {
    run_flow(job, portal, store).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_conf::ValueExt;

    fn record(i: i64) -> Value {
        let mut v = Value::map();
        v.set("kind", "sample");
        v.set("experiment_id", "exp-t");
        v.set("sample", i);
        v
    }

    #[test]
    fn background_pipeline_publishes_everything() {
        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        let flow = PublishFlow::start(Arc::clone(&portal), Arc::clone(&store));
        for i in 0..50 {
            flow.publish(FlowJob {
                record: record(i),
                image: if i % 5 == 0 { Some(Bytes::from(vec![i as u8; 64])) } else { None },
            });
        }
        flow.flush();
        assert_eq!(portal.len(), 50);
        assert_eq!(store.len(), 10);
        let stats = flow.close();
        assert_eq!(stats.published, 50);
        assert_eq!(stats.blobs, 10);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn image_ref_is_patched_into_record() {
        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        publish_sync(
            FlowJob { record: record(1), image: Some(Bytes::from_static(b"img")) },
            &portal,
            &store,
        )
        .unwrap();
        let recs = portal.find("sample", "1");
        assert_eq!(recs.len(), 1);
        let blob_ref = recs[0].opt_str("image_ref").unwrap();
        assert!(blob_ref.starts_with("blob:"));
        assert!(store.get(&BlobRef(blob_ref.to_string())).is_some());
    }

    #[test]
    fn flush_is_a_barrier() {
        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        let flow = PublishFlow::start(Arc::clone(&portal), Arc::clone(&store));
        for i in 0..200 {
            flow.publish(FlowJob { record: record(i), image: None });
        }
        flow.flush();
        // After flush every record is visible, no sleep needed.
        assert_eq!(portal.len(), 200);
        drop(flow);
    }

    #[test]
    fn drop_joins_the_worker() {
        let portal = Arc::new(AcdcPortal::new());
        let store = Arc::new(BlobStore::in_memory());
        {
            let flow = PublishFlow::start(Arc::clone(&portal), Arc::clone(&store));
            flow.publish(FlowJob { record: record(7), image: None });
            flow.flush();
        } // drop here must not hang
        assert_eq!(portal.len(), 1);
    }
}
