//! Published data records.
//!
//! "For each run, the data created includes the colors produced, the timing
//! of each step, the scoring results from the solver, and the raw plate
//! images for quality control" (paper §2.3). These types are the schema of
//! those publications; they serialize to the `sdl-conf` value tree and then
//! to JSON.

use sdl_conf::{Value, ValueExt};

/// One measured sample (one well of one run).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Experiment identifier (one per application invocation).
    pub experiment_id: String,
    /// Run number within the experiment (1-based; one run per plate batch).
    pub run: u32,
    /// Global sample sequence number within the experiment (1-based).
    pub sample: u32,
    /// Well label ("A1").
    pub well: String,
    /// Solver ratios proposed for this sample.
    pub ratios: Vec<f64>,
    /// Volumes dispensed, µL.
    pub volumes_ul: Vec<f64>,
    /// Measured color (sRGB bytes).
    pub measured: [u8; 3],
    /// Target color (sRGB bytes).
    pub target: [u8; 3],
    /// Score (delta-e distance to target).
    pub score: f64,
    /// Best score seen so far in the experiment.
    pub best_so_far: f64,
    /// Elapsed experiment time at measurement, seconds.
    pub elapsed_s: f64,
    /// Wall-clock duration of the batch that produced this sample, on the
    /// lab's clock (`None` on records published before this telemetry
    /// existed). Lets replayed runs reconstruct real per-batch durations
    /// instead of zeroed placeholders.
    pub batch_wall_s: Option<f64>,
    /// Blob reference of the plate image this sample was read from.
    pub image_ref: Option<String>,
}

impl SampleRecord {
    /// Serialize to a value tree.
    pub fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("kind", "sample");
        v.set("experiment_id", self.experiment_id.as_str());
        v.set("run", self.run as i64);
        v.set("sample", self.sample as i64);
        v.set("well", self.well.as_str());
        v.set("ratios", Value::Seq(self.ratios.iter().map(|r| Value::Float(*r)).collect()));
        v.set("volumes_ul", Value::Seq(self.volumes_ul.iter().map(|r| Value::Float(*r)).collect()));
        v.set(
            "measured",
            Value::Seq(self.measured.iter().map(|c| Value::Int(*c as i64)).collect()),
        );
        v.set("target", Value::Seq(self.target.iter().map(|c| Value::Int(*c as i64)).collect()));
        v.set("score", self.score);
        v.set("best_so_far", self.best_so_far);
        v.set("elapsed_s", self.elapsed_s);
        if let Some(wall) = self.batch_wall_s {
            v.set("batch_wall_s", wall);
        }
        match &self.image_ref {
            Some(r) => v.set("image_ref", r.as_str()),
            None => v.set("image_ref", Value::Null),
        };
        v
    }

    /// Parse back from a value tree.
    pub fn from_value(v: &Value) -> Option<SampleRecord> {
        if v.opt_str("kind") != Some("sample") {
            return None;
        }
        let bytes3 = |path: &str| -> Option<[u8; 3]> {
            let seq = v.req(path).ok()?.as_seq()?;
            if seq.len() != 3 {
                return None;
            }
            let mut out = [0u8; 3];
            for (o, s) in out.iter_mut().zip(seq) {
                *o = s.as_i64()?.clamp(0, 255) as u8;
            }
            Some(out)
        };
        let floats = |path: &str| -> Option<Vec<f64>> {
            v.req(path).ok()?.as_seq()?.iter().map(Value::as_f64).collect()
        };
        Some(SampleRecord {
            experiment_id: v.opt_str("experiment_id")?.to_string(),
            run: v.opt_i64("run")? as u32,
            sample: v.opt_i64("sample")? as u32,
            well: v.opt_str("well")?.to_string(),
            ratios: floats("ratios")?,
            volumes_ul: floats("volumes_ul")?,
            measured: bytes3("measured")?,
            target: bytes3("target")?,
            score: v.opt_f64("score")?,
            best_so_far: v.opt_f64("best_so_far")?,
            elapsed_s: v.opt_f64("elapsed_s")?,
            batch_wall_s: v.opt_f64("batch_wall_s"),
            image_ref: v.opt_str("image_ref").map(str::to_string),
        })
    }
}

/// Experiment-level metadata (the portal's top card, Figure 3 left).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment identifier.
    pub experiment_id: String,
    /// Human-readable name ("ColorPickerRPL").
    pub name: String,
    /// ISO-ish date string.
    pub date: String,
    /// Target color.
    pub target: [u8; 3],
    /// Solver name.
    pub solver: String,
    /// Batch size.
    pub batch: u32,
    /// Total sample budget.
    pub sample_budget: u32,
}

impl ExperimentRecord {
    /// Serialize to a value tree.
    pub fn to_value(&self) -> Value {
        let mut v = Value::map();
        v.set("kind", "experiment");
        v.set("experiment_id", self.experiment_id.as_str());
        v.set("name", self.name.as_str());
        v.set("date", self.date.as_str());
        v.set("target", Value::Seq(self.target.iter().map(|c| Value::Int(*c as i64)).collect()));
        v.set("solver", self.solver.as_str());
        v.set("batch", self.batch as i64);
        v.set("sample_budget", self.sample_budget as i64);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdl_conf::{from_json, to_json};

    fn sample() -> SampleRecord {
        SampleRecord {
            experiment_id: "exp-0816".into(),
            run: 12,
            sample: 173,
            well: "C5".into(),
            ratios: vec![0.2, 0.15, 0.16, 0.62],
            volumes_ul: vec![8.0, 6.0, 6.4, 24.8],
            measured: [119, 121, 118],
            target: [120, 120, 120],
            score: 2.45,
            best_so_far: 2.45,
            elapsed_s: 28_375.5,
            batch_wall_s: None,
            image_ref: Some("blob:ab12cd".into()),
        }
    }

    #[test]
    fn sample_roundtrips_through_json() {
        let rec = sample();
        let text = to_json(&rec.to_value());
        let back = SampleRecord::from_value(&from_json(&text).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn sample_without_image() {
        let mut rec = sample();
        rec.image_ref = None;
        let back = SampleRecord::from_value(&rec.to_value()).unwrap();
        assert_eq!(back.image_ref, None);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let exp = ExperimentRecord {
            experiment_id: "e".into(),
            name: "ColorPickerRPL".into(),
            date: "2023-08-16".into(),
            target: [120, 120, 120],
            solver: "genetic".into(),
            batch: 1,
            sample_budget: 128,
        };
        assert!(SampleRecord::from_value(&exp.to_value()).is_none());
    }

    #[test]
    fn malformed_values_return_none() {
        let mut v = sample().to_value();
        v.set("measured", Value::Seq(vec![Value::Int(1)])); // wrong arity
        assert!(SampleRecord::from_value(&v).is_none());
        let mut v = sample().to_value();
        v.set("score", "not a number");
        assert!(SampleRecord::from_value(&v).is_none());
    }
}
