//! Content-addressed blob store for plate images.
//!
//! The portal keeps "the raw plate images for quality control" (§2.3).
//! Blobs are addressed by a content hash, deduplicated, and optionally
//! spilled to a directory as `.bin` files.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;

/// Reference to a stored blob (`blob:<hex>`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlobRef(pub String);

impl BlobRef {
    fn from_hash(h: u64) -> BlobRef {
        BlobRef(format!("blob:{h:016x}"))
    }
}

impl std::fmt::Display for BlobRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Mix in the length to separate prefix collisions.
    h ^ (bytes.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Thread-safe content-addressed store.
#[derive(Debug, Default)]
pub struct BlobStore {
    blobs: Mutex<HashMap<BlobRef, Bytes>>,
    spill_dir: Option<PathBuf>,
}

impl BlobStore {
    /// In-memory store.
    pub fn in_memory() -> BlobStore {
        BlobStore::default()
    }

    /// Store that also writes each blob to `dir` (created on demand).
    pub fn with_spill_dir(dir: impl Into<PathBuf>) -> BlobStore {
        BlobStore { blobs: Mutex::new(HashMap::new()), spill_dir: Some(dir.into()) }
    }

    /// Store a blob, returning its reference (idempotent).
    pub fn put(&self, data: Bytes) -> BlobRef {
        let r = BlobRef::from_hash(fnv64(&data));
        let mut blobs = self.blobs.lock();
        if blobs.contains_key(&r) {
            return r;
        }
        if let Some(dir) = &self.spill_dir {
            let _ = std::fs::create_dir_all(dir);
            let name = r.0.replace(':', "_");
            let _ = std::fs::write(dir.join(format!("{name}.bin")), &data);
        }
        blobs.insert(r.clone(), data);
        r
    }

    /// Fetch a blob.
    pub fn get(&self, r: &BlobRef) -> Option<Bytes> {
        self.blobs.lock().get(r).cloned()
    }

    /// Number of distinct blobs held.
    pub fn len(&self) -> usize {
        self.blobs.lock().len()
    }

    /// True when no blobs are held.
    pub fn is_empty(&self) -> bool {
        self.blobs.lock().is_empty()
    }

    /// Total bytes held in memory.
    pub fn total_bytes(&self) -> usize {
        self.blobs.lock().values().map(Bytes::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = BlobStore::in_memory();
        let r = store.put(Bytes::from_static(b"plate image bytes"));
        assert_eq!(store.get(&r).unwrap(), Bytes::from_static(b"plate image bytes"));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn identical_content_deduplicates() {
        let store = BlobStore::in_memory();
        let a = store.put(Bytes::from_static(b"same"));
        let b = store.put(Bytes::from_static(b"same"));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        let c = store.put(Bytes::from_static(b"different"));
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes(), 4 + 9);
    }

    #[test]
    fn missing_blob_is_none() {
        let store = BlobStore::in_memory();
        assert!(store.get(&BlobRef("blob:deadbeef".into())).is_none());
    }

    #[test]
    fn spill_dir_receives_files() {
        let dir = std::env::temp_dir().join(format!("sdl-blob-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = BlobStore::with_spill_dir(&dir);
        let r = store.put(Bytes::from_static(b"spilled"));
        let expect = dir.join(format!("{}.bin", r.0.replace(':', "_")));
        assert_eq!(std::fs::read(expect).unwrap(), b"spilled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn display_format() {
        let r = BlobRef::from_hash(0xabcd);
        assert_eq!(r.to_string(), "blob:000000000000abcd");
    }
}
