//! Content-addressed blob store for plate images.
//!
//! The portal keeps "the raw plate images for quality control" (§2.3).
//! Blobs are addressed by a content hash, deduplicated, and optionally
//! spilled to a directory as `.bin` files.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;

/// Reference to a stored blob (`blob:<hex>`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlobRef(pub String);

impl BlobRef {
    fn from_hash(h: u64) -> BlobRef {
        BlobRef(format!("blob:{h:016x}"))
    }
}

impl std::fmt::Display for BlobRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Mix in the length to separate prefix collisions.
    h ^ (bytes.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Map plus its running byte total, guarded by one lock so the total can
/// never drift from the map contents.
#[derive(Debug, Default)]
struct Inner {
    /// Blob → (bytes, LRU stamp). Stamps come from a shared clock; the
    /// smallest stamp is the least recently touched blob.
    blobs: HashMap<BlobRef, (Bytes, u64)>,
    /// Sum of every in-memory blob's length.
    bytes: usize,
}

/// Thread-safe content-addressed store with an optional memory ceiling:
/// with a spill directory and [`BlobStore::with_mem_cap`], least recently
/// used blobs are evicted from memory once the ceiling is crossed (their
/// spilled `.bin` file remains the durable copy) and transparently
/// reloaded — hash-verified — on the next `get`.
#[derive(Debug, Default)]
pub struct BlobStore {
    inner: Mutex<Inner>,
    spill_dir: Option<PathBuf>,
    spill_ready: std::sync::atomic::AtomicBool,
    /// In-memory byte ceiling; `0` = unbounded. Only enforced when a
    /// spill directory makes eviction lossless.
    mem_cap: usize,
    clock: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
    reloads: std::sync::atomic::AtomicU64,
}

impl BlobStore {
    /// In-memory store.
    pub fn in_memory() -> BlobStore {
        BlobStore::default()
    }

    /// Store that also writes each blob to `dir`. The directory (and any
    /// missing parents) is created on the first write, so a store may be
    /// configured with a path that does not exist yet.
    pub fn with_spill_dir(dir: impl Into<PathBuf>) -> BlobStore {
        BlobStore { spill_dir: Some(dir.into()), ..BlobStore::default() }
    }

    /// Builder: cap in-memory blob bytes at `cap` (`0` = unbounded).
    /// Without a spill directory the cap is ignored — evicting a blob
    /// that exists nowhere else would lose it. Applies immediately to
    /// anything already held (e.g. after [`BlobStore::open_spill_dir`]).
    pub fn with_mem_cap(self, cap: usize) -> BlobStore {
        let store = BlobStore { mem_cap: cap, ..self };
        {
            let mut inner = store.inner.lock();
            store.enforce(&mut inner);
        }
        store
    }

    /// Reopen a spill directory: load every previously spilled blob back
    /// into memory, then continue spilling new blobs to the same place.
    /// Files whose content no longer matches their name are skipped.
    pub fn open_spill_dir(dir: impl Into<PathBuf>) -> std::io::Result<BlobStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = BlobStore::with_spill_dir(&dir);
        store.spill_ready.store(true, std::sync::atomic::Ordering::Release);
        let mut inner = store.inner.lock();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.starts_with("blob_") || !name.ends_with(".bin") {
                continue;
            }
            let data = Bytes::from(std::fs::read(&path)?);
            let r = BlobRef::from_hash(fnv64(&data));
            if r.0.replace(':', "_") + ".bin" == name {
                let stamp = store.tick();
                inner.bytes += data.len();
                inner.blobs.insert(r, (data, stamp));
            }
        }
        drop(inner);
        Ok(store)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Evict least-recently-used blobs until memory fits the cap. Only
    /// meaningful with a spill directory: every in-memory blob of such a
    /// store already has its durable `.bin` copy, so eviction is lossless.
    fn enforce(&self, inner: &mut Inner) {
        if self.mem_cap == 0 || self.spill_dir.is_none() {
            return;
        }
        while inner.bytes > self.mem_cap && !inner.blobs.is_empty() {
            let victim = inner
                .blobs
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(r, _)| r.clone())
                .expect("non-empty map has a minimum");
            if let Some((data, _)) = inner.blobs.remove(&victim) {
                inner.bytes -= data.len();
                self.evictions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    fn spill(&self, r: &BlobRef, data: &Bytes) {
        use std::sync::atomic::Ordering;
        let Some(dir) = &self.spill_dir else { return };
        if !self.spill_ready.load(Ordering::Acquire) {
            // First write: make sure the directory exists before anything
            // lands in it. `create_dir_all` is idempotent under races.
            let _ = std::fs::create_dir_all(dir);
            self.spill_ready.store(true, Ordering::Release);
        }
        let name = r.0.replace(':', "_");
        let _ = std::fs::write(dir.join(format!("{name}.bin")), data);
    }

    /// Store a blob, returning its reference (idempotent).
    pub fn put(&self, data: Bytes) -> BlobRef {
        let r = BlobRef::from_hash(fnv64(&data));
        let mut inner = self.inner.lock();
        if let Some((_, stamp)) = inner.blobs.get_mut(&r) {
            *stamp = self.tick();
            return r;
        }
        self.spill(&r, &data);
        inner.bytes += data.len();
        let stamp = self.tick();
        inner.blobs.insert(r.clone(), (data, stamp));
        self.enforce(&mut inner);
        r
    }

    /// Fetch a blob. A memory miss in a spill-directory store falls back
    /// to the blob's `.bin` file (an LRU-evicted blob lives only there),
    /// verifies the content hash against the reference, and caches it
    /// back in memory.
    pub fn get(&self, r: &BlobRef) -> Option<Bytes> {
        {
            let mut inner = self.inner.lock();
            if let Some((data, stamp)) = inner.blobs.get_mut(r) {
                *stamp = self.tick();
                return Some(data.clone());
            }
        }
        let dir = self.spill_dir.as_ref()?;
        let path = dir.join(format!("{}.bin", r.0.replace(':', "_")));
        let data = Bytes::from(std::fs::read(path).ok()?);
        if BlobRef::from_hash(fnv64(&data)) != *r {
            return None; // tampered or torn spill file
        }
        self.reloads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if !inner.blobs.contains_key(r) {
            inner.bytes += data.len();
            let stamp = self.tick();
            inner.blobs.insert(r.clone(), (data.clone(), stamp));
            self.enforce(&mut inner);
        }
        Some(data)
    }

    /// References of every blob held in memory, in unspecified order.
    pub fn refs(&self) -> Vec<BlobRef> {
        self.inner.lock().blobs.keys().cloned().collect()
    }

    /// Snapshot of every in-memory (reference, bytes) pair, in
    /// unspecified order.
    pub fn entries(&self) -> Vec<(BlobRef, Bytes)> {
        self.inner.lock().blobs.iter().map(|(r, (b, _))| (r.clone(), b.clone())).collect()
    }

    /// Copy every blob into `dst` (references are content hashes, so they
    /// are identical in both stores afterwards).
    pub fn merge_into(&self, dst: &BlobStore) {
        for (_, data) in self.entries() {
            dst.put(data);
        }
    }

    /// Number of distinct blobs held in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().blobs.len()
    }

    /// True when no blobs are held in memory.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().blobs.is_empty()
    }

    /// Total bytes held in memory (never exceeds the cap for long: `put`
    /// and `get` evict back down before returning).
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// The configured in-memory byte ceiling (`0` = unbounded).
    pub fn mem_cap(&self) -> usize {
        self.mem_cap
    }

    /// Blobs evicted from memory to their spill files so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Evicted blobs reloaded (hash-verified) from spill files so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = BlobStore::in_memory();
        let r = store.put(Bytes::from_static(b"plate image bytes"));
        assert_eq!(store.get(&r).unwrap(), Bytes::from_static(b"plate image bytes"));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn identical_content_deduplicates() {
        let store = BlobStore::in_memory();
        let a = store.put(Bytes::from_static(b"same"));
        let b = store.put(Bytes::from_static(b"same"));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        let c = store.put(Bytes::from_static(b"different"));
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes(), 4 + 9);
    }

    #[test]
    fn missing_blob_is_none() {
        let store = BlobStore::in_memory();
        assert!(store.get(&BlobRef("blob:deadbeef".into())).is_none());
    }

    #[test]
    fn spill_dir_receives_files() {
        let dir = std::env::temp_dir().join(format!("sdl-blob-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = BlobStore::with_spill_dir(&dir);
        let r = store.put(Bytes::from_static(b"spilled"));
        let expect = dir.join(format!("{}.bin", r.0.replace(':', "_")));
        assert_eq!(std::fs::read(expect).unwrap(), b"spilled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_dir_is_created_on_first_write() {
        let dir = std::env::temp_dir()
            .join(format!("sdl-blob-missing-{}", std::process::id()))
            .join("deeper")
            .join("still");
        let _ = std::fs::remove_dir_all(&dir);
        let store = BlobStore::with_spill_dir(&dir);
        assert!(!dir.exists(), "directory must not be created before the first write");
        let r = store.put(Bytes::from_static(b"first write creates the dir"));
        let expect = dir.join(format!("{}.bin", r.0.replace(':', "_")));
        assert_eq!(std::fs::read(expect).unwrap(), b"first write creates the dir");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_roundtrip_reloads_blobs() {
        let dir = std::env::temp_dir().join(format!("sdl-blob-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (a, b) = {
            let store = BlobStore::with_spill_dir(&dir);
            (store.put(Bytes::from_static(b"plate A")), store.put(Bytes::from_static(b"plate B")))
        };
        // A fresh store opened on the same directory sees both blobs under
        // their original references.
        let reopened = BlobStore::open_spill_dir(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(&a).unwrap(), Bytes::from_static(b"plate A"));
        assert_eq!(reopened.get(&b).unwrap(), Bytes::from_static(b"plate B"));
        // Corrupted files are skipped rather than served under a bad ref.
        std::fs::write(dir.join(format!("{}.bin", a.0.replace(':', "_"))), b"tampered").unwrap();
        let reopened = BlobStore::open_spill_dir(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.get(&a).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_cap_evicts_lru_and_reloads_on_get() {
        let dir = std::env::temp_dir().join(format!("sdl-blob-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = BlobStore::with_spill_dir(&dir).with_mem_cap(24);
        let a = store.put(Bytes::from(vec![b'a'; 10]));
        let b = store.put(Bytes::from(vec![b'b'; 10]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes(), 20);
        store.get(&a).unwrap(); // touch a: b becomes least recently used
        let c = store.put(Bytes::from(vec![b'c'; 10])); // 30 > 24 → evict b
        assert!(store.total_bytes() <= 24, "memory must stay under the cap");
        assert_eq!(store.evictions(), 1);
        assert!(store.get(&a).is_some() || store.get(&c).is_some());
        // The evicted blob is served from (and verified against) its
        // spill file, then cached back under the same cap.
        assert_eq!(store.get(&b).unwrap(), Bytes::from(vec![b'b'; 10]));
        assert!(store.reloads() >= 1);
        assert!(store.total_bytes() <= 24, "reload must not break the cap");
        assert_eq!(store.mem_cap(), 24);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_cap_without_spill_dir_is_ignored() {
        let store = BlobStore::in_memory().with_mem_cap(4);
        let r = store.put(Bytes::from_static(b"bigger than four"));
        // Evicting here would lose the only copy, so the cap is inert.
        assert_eq!(store.get(&r).unwrap(), Bytes::from_static(b"bigger than four"));
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn merge_into_copies_blobs() {
        let src = BlobStore::in_memory();
        let dst = BlobStore::in_memory();
        let a = src.put(Bytes::from_static(b"one"));
        let b = src.put(Bytes::from_static(b"two"));
        dst.put(Bytes::from_static(b"two")); // overlap dedupes
        src.merge_into(&dst);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst.get(&a).unwrap(), Bytes::from_static(b"one"));
        assert_eq!(dst.get(&b).unwrap(), Bytes::from_static(b"two"));
        let mut refs = dst.refs();
        refs.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(refs.len(), 2);
        assert_eq!(dst.entries().len(), 2);
    }

    #[test]
    fn display_format() {
        let r = BlobRef::from_hash(0xabcd);
        assert_eq!(r.to_string(), "blob:000000000000abcd");
    }
}
