//! The ACDC-style data portal.
//!
//! "The publication step engages a Globus flow to publish data to the ALCF
//! Community Data Co-Op (ACDC) data portal" (§2.3). The portal here is a
//! searchable, insertion-ordered record index with the two views of
//! Figure 3: the experiment summary and the per-run detail table. Records
//! can be exported to and reloaded from JSON-lines files.

use crate::record::SampleRecord;
use parking_lot::RwLock;
use sdl_conf::{from_json, to_json, Value, ValueExt};
use std::fmt::Write as _;
use std::path::Path;

/// True when the value at `path` inside `record` matches `raw`.
///
/// `raw` is matched as a string first; when it parses as a number it is
/// also compared against integer and float fields with typed equality, so
/// `find("run", "12")`, `find("score", "2.5")` and `find("run", "12.0")`
/// all behave the way a query-string filter should.
pub fn field_matches(record: &Value, path: &str, raw: &str) -> bool {
    if record.opt_str(path) == Some(raw) {
        return true;
    }
    if let Ok(n) = raw.parse::<i64>() {
        if record.opt_i64(path) == Some(n) {
            return true;
        }
    }
    if let Ok(x) = raw.parse::<f64>() {
        if record.opt_f64(path) == Some(x) {
            return true;
        }
    }
    false
}

/// Thread-safe searchable record index.
#[derive(Debug, Default)]
pub struct AcdcPortal {
    records: RwLock<Vec<Value>>,
}

impl AcdcPortal {
    /// Empty portal.
    pub fn new() -> AcdcPortal {
        AcdcPortal::default()
    }

    /// Ingest one record (any value tree with a `kind` field).
    pub fn ingest(&self, record: Value) {
        self.records.write().push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// True when the portal holds nothing.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// All records whose value at a dotted path matches `value` (string
    /// equality, or typed i64/f64 equality when `value` parses as a
    /// number — see [`field_matches`]).
    pub fn find(&self, path: &str, value: &str) -> Vec<Value> {
        self.records.read().iter().filter(|r| field_matches(r, path, value)).cloned().collect()
    }

    /// Records matching an arbitrary predicate.
    pub fn search(&self, pred: impl Fn(&Value) -> bool) -> Vec<Value> {
        self.records.read().iter().filter(|r| pred(r)).cloned().collect()
    }

    /// Records matching a predicate, windowed by `offset`/`limit` after
    /// filtering (the portal's paging primitive).
    pub fn search_page(
        &self,
        pred: impl Fn(&Value) -> bool,
        offset: usize,
        limit: usize,
    ) -> (Vec<Value>, usize) {
        let records = self.records.read();
        let mut total = 0usize;
        let mut page = Vec::new();
        for r in records.iter().filter(|r| pred(r)) {
            if total >= offset && page.len() < limit {
                page.push(r.clone());
            }
            total += 1;
        }
        (page, total)
    }

    /// Append every record of `other`, preserving its publication order.
    pub fn merge_from(&self, other: &AcdcPortal) {
        let incoming = other.search(|_| true);
        self.records.write().extend(incoming);
    }

    /// Experiment ids with a metadata record, in publication order.
    pub fn experiments(&self) -> Vec<String> {
        self.records
            .read()
            .iter()
            .filter(|r| r.opt_str("kind") == Some("experiment"))
            .filter_map(|r| r.opt_str("experiment_id").map(str::to_string))
            .collect()
    }

    /// Sample records of one experiment, in publication order.
    pub fn samples(&self, experiment_id: &str) -> Vec<SampleRecord> {
        self.records
            .read()
            .iter()
            .filter(|r| r.opt_str("experiment_id") == Some(experiment_id))
            .filter_map(SampleRecord::from_value)
            .collect()
    }

    /// The Figure-3 left view: experiment summary.
    pub fn summary_view(&self, experiment_id: &str) -> String {
        let meta = {
            let records = self.records.read();
            records
                .iter()
                .find(|r| {
                    r.opt_str("kind") == Some("experiment")
                        && r.opt_str("experiment_id") == Some(experiment_id)
                })
                .cloned()
        };
        let samples = self.samples(experiment_id);
        let runs: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.run).collect();
        let best = samples.iter().map(|s| s.score).fold(f64::INFINITY, f64::min);

        let mut out = String::new();
        let _ = writeln!(out, "=== ACDC portal: experiment {experiment_id} ===");
        if let Some(m) = meta {
            let _ = writeln!(
                out,
                "name: {}   date: {}   solver: {}   batch: {}",
                m.opt_str("name").unwrap_or("?"),
                m.opt_str("date").unwrap_or("?"),
                m.opt_str("solver").unwrap_or("?"),
                m.opt_i64("batch").unwrap_or(0),
            );
            if let Some(t) = m.req("target").ok().and_then(Value::as_seq) {
                let t: Vec<String> =
                    t.iter().filter_map(Value::as_i64).map(|v| v.to_string()).collect();
                let _ = writeln!(out, "target color: RGB=({})", t.join(","));
            }
        }
        let _ = writeln!(
            out,
            "{} runs, {} samples total{}",
            runs.len(),
            samples.len(),
            if best.is_finite() { format!(", best score {best:.2}") } else { String::new() }
        );
        for run in runs {
            let in_run: Vec<&SampleRecord> = samples.iter().filter(|s| s.run == run).collect();
            let run_best = in_run.iter().map(|s| s.score).fold(f64::INFINITY, f64::min);
            let _ =
                writeln!(out, "  run #{run:<3} {:>3} samples   best {run_best:>7.2}", in_run.len());
        }
        out
    }

    /// The Figure-3 right view: detailed data from one run.
    pub fn run_detail(&self, experiment_id: &str, run: u32) -> String {
        let samples: Vec<SampleRecord> =
            self.samples(experiment_id).into_iter().filter(|s| s.run == run).collect();
        let mut out = String::new();
        let _ = writeln!(out, "=== ACDC portal: experiment {experiment_id}, run #{run} ===");
        let _ = writeln!(
            out,
            "{:>6} {:>5} {:>15} {:>15} {:>8} {:>8} {:>10}  image",
            "sample", "well", "measured RGB", "target RGB", "score", "best", "elapsed"
        );
        for s in &samples {
            let _ = writeln!(
                out,
                "{:>6} {:>5} {:>15} {:>15} {:>8.2} {:>8.2} {:>9.1}m  {}",
                s.sample,
                s.well,
                format!("({},{},{})", s.measured[0], s.measured[1], s.measured[2]),
                format!("({},{},{})", s.target[0], s.target[1], s.target[2]),
                s.score,
                s.best_so_far,
                s.elapsed_s / 60.0,
                s.image_ref.as_deref().unwrap_or("-"),
            );
        }
        if samples.is_empty() {
            let _ = writeln!(out, "(no samples)");
        }
        out
    }

    /// Export all records as JSON lines.
    pub fn export_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        use std::io::Write;
        let records = self.records.read();
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        for r in records.iter() {
            writeln!(w, "{}", to_json(r))?;
        }
        w.flush()?;
        Ok(records.len())
    }

    /// Load records from a JSON-lines file (appending).
    pub fn import_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let mut n = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match from_json(line) {
                Ok(v) => {
                    self.ingest(v);
                    n += 1;
                }
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExperimentRecord;

    fn seed_portal() -> AcdcPortal {
        let portal = AcdcPortal::new();
        portal.ingest(
            ExperimentRecord {
                experiment_id: "exp-1".into(),
                name: "ColorPickerRPL".into(),
                date: "2023-08-16".into(),
                target: [120, 120, 120],
                solver: "genetic".into(),
                batch: 15,
                sample_budget: 180,
            }
            .to_value(),
        );
        for run in 1..=12u32 {
            for i in 1..=15u32 {
                let sample = (run - 1) * 15 + i;
                portal.ingest(
                    SampleRecord {
                        experiment_id: "exp-1".into(),
                        run,
                        sample,
                        well: format!("A{}", (i % 12) + 1),
                        ratios: vec![0.2; 4],
                        volumes_ul: vec![8.0; 4],
                        measured: [120, 119, 122],
                        target: [120, 120, 120],
                        score: 30.0 - sample as f64 / 10.0,
                        best_so_far: 30.0 - sample as f64 / 10.0,
                        elapsed_s: sample as f64 * 228.0,
                        batch_wall_s: None,
                        image_ref: None,
                    }
                    .to_value(),
                );
            }
        }
        portal
    }

    #[test]
    fn figure3_scale_is_reproduced() {
        let portal = seed_portal();
        // 12 runs × 15 samples = 180 experiments, plus 1 metadata record.
        assert_eq!(portal.len(), 181);
        assert_eq!(portal.samples("exp-1").len(), 180);
    }

    #[test]
    fn find_filters_by_field() {
        let portal = seed_portal();
        assert_eq!(portal.find("kind", "experiment").len(), 1);
        assert_eq!(portal.find("run", "12").len(), 15);
        assert_eq!(portal.find("experiment_id", "nope").len(), 0);
    }

    #[test]
    fn find_matches_numbers_with_typed_comparison() {
        let portal = seed_portal();
        // Integer fields match integer-shaped strings and float-shaped
        // strings with the same value.
        assert_eq!(portal.find("run", "12").len(), 15);
        assert_eq!(portal.find("run", "12.0").len(), 15);
        // Float fields match numerically: sample 1 scored 30.0 - 0.1 = 29.9,
        // which as a string is "29.9" but was stored as a Float.
        assert_eq!(portal.find("score", "29.9").len(), 1);
        assert!(portal.find("score", "29.90").len() == 1, "float equality must be typed");
        // Whole floats match integer-shaped queries.
        let p = AcdcPortal::new();
        let mut v = Value::map();
        v.set("x", 5.0);
        p.ingest(v);
        assert_eq!(p.find("x", "5").len(), 1);
        // Non-numeric strings never match numeric fields.
        assert_eq!(portal.find("run", "twelve").len(), 0);
    }

    #[test]
    fn search_page_windows_after_filtering() {
        let portal = seed_portal();
        let is_sample = |r: &Value| r.opt_str("kind") == Some("sample");
        let (page, total) = portal.search_page(is_sample, 0, 10);
        assert_eq!((page.len(), total), (10, 180));
        let (page, total) = portal.search_page(is_sample, 175, 10);
        assert_eq!((page.len(), total), (5, 180));
        assert_eq!(page[0].opt_i64("sample"), Some(176));
        let (page, _) = portal.search_page(is_sample, 500, 10);
        assert!(page.is_empty());
    }

    #[test]
    fn search_with_predicate() {
        let portal = seed_portal();
        let good = portal.search(|r| r.opt_f64("score").map(|s| s < 15.0).unwrap_or(false));
        assert!(!good.is_empty());
        assert!(good.len() < 180);
    }

    #[test]
    fn summary_view_mentions_runs_and_best() {
        let portal = seed_portal();
        let view = portal.summary_view("exp-1");
        assert!(view.contains("12 runs, 180 samples"), "{view}");
        assert!(view.contains("ColorPickerRPL"));
        assert!(view.contains("RGB=(120,120,120)"));
        assert!(view.contains("run #12"));
    }

    #[test]
    fn run_detail_lists_samples() {
        let portal = seed_portal();
        let view = portal.run_detail("exp-1", 12);
        assert_eq!(view.lines().count(), 2 + 15);
        assert!(view.contains("run #12"));
        let empty = portal.run_detail("exp-1", 99);
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn jsonl_roundtrip() {
        let portal = seed_portal();
        let path = std::env::temp_dir().join(format!("sdl-portal-{}.jsonl", std::process::id()));
        let n = portal.export_jsonl(&path).unwrap();
        assert_eq!(n, 181);
        let fresh = AcdcPortal::new();
        let m = fresh.import_jsonl(&path).unwrap();
        assert_eq!(m, 181);
        assert_eq!(fresh.samples("exp-1").len(), 180);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn jsonl_roundtrip_preserves_order_and_fields() {
        let portal = seed_portal();
        let path =
            std::env::temp_dir().join(format!("sdl-portal-fidelity-{}.jsonl", std::process::id()));
        portal.export_jsonl(&path).unwrap();
        let reloaded = AcdcPortal::new();
        reloaded.import_jsonl(&path).unwrap();
        let before = portal.search(|_| true);
        let after = reloaded.search(|_| true);
        assert_eq!(before.len(), after.len());
        // Records come back in the exact order they were published, with
        // every field (including nested sequences and floats) intact.
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            assert_eq!(to_json(b), to_json(a), "record {i} changed across the round-trip");
        }
        // Typed views survive too: the same samples parse identically.
        let b = portal.samples("exp-1");
        let a = reloaded.samples("exp-1");
        assert_eq!(b, a);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn experiments_lists_metadata_records() {
        let portal = seed_portal();
        assert_eq!(portal.experiments(), vec!["exp-1".to_string()]);
        assert!(AcdcPortal::new().experiments().is_empty());
    }
}
