//! `sdl-datapub` — the data-publication substrate (paper §2.3, Figure 3).
//!
//! "The publication step engages a Globus flow to publish data to the ALCF
//! Community Data Co-Op (ACDC) data portal." This crate substitutes both
//! halves:
//!
//! * [`PublishFlow`] — an asynchronous three-step pipeline (Transfer →
//!   Ingest → Index) on a background worker, with `flush` as a delivery
//!   barrier;
//! * [`AcdcPortal`] — a searchable record index rendering the Figure-3
//!   summary and run-detail views, with JSON-lines import/export;
//! * [`BlobStore`] — content-addressed storage for raw plate images;
//! * [`SampleRecord`] / [`ExperimentRecord`] — the published schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod html;
mod portal;
mod record;
mod store;

pub use flow::{publish_sync, FlowJob, FlowStats, PublishFlow};
pub use html::{base64, render_html, render_run_html, render_summary_html, url_encode};
pub use portal::{field_matches, AcdcPortal};
pub use record::{ExperimentRecord, SampleRecord};
pub use store::{BlobRef, BlobStore};
