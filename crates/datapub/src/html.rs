//! Static-HTML export of the portal — the shareable equivalent of the
//! Globus Search web views in the paper's Figure 3.

use crate::portal::AcdcPortal;
use crate::record::SampleRecord;
use crate::store::{BlobRef, BlobStore};
use sdl_conf::ValueExt;
use std::fmt::Write as _;

/// Standard base64 (RFC 4648, with padding) for data URIs.
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Shared `<head>` + opening `<body>` for every portal page.
fn page_head(title: &str) -> String {
    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>{title}</title><style>\
         body{{font-family:system-ui,sans-serif;margin:2rem;background:#fafafa;color:#222}}\
         table{{border-collapse:collapse;margin:1rem 0}}\
         th,td{{border:1px solid #ccc;padding:0.3rem 0.6rem;font-size:0.85rem;text-align:right}}\
         th{{background:#eee}}td.well{{text-align:center}}\
         .swatch{{display:inline-block;width:1.1em;height:1.1em;border:1px solid #999;\
         vertical-align:middle;margin-right:0.3em}}\
         img{{border:1px solid #999;max-width:320px;display:block;margin:0.5rem 0}}\
         h2{{margin-top:2rem}}a{{color:#06c}}</style></head><body>",
        title = escape(title)
    )
}

/// Experiment metadata paragraph (name/date/solver/batch + target swatch).
fn meta_block(portal: &AcdcPortal, experiment_id: &str) -> String {
    let meta = portal
        .search(|r| {
            r.opt_str("kind") == Some("experiment")
                && r.opt_str("experiment_id") == Some(experiment_id)
        })
        .into_iter()
        .next();
    let Some(m) = meta else { return String::new() };
    let mut html = String::new();
    let _ = write!(
        html,
        "<p><b>{}</b> &middot; {} &middot; solver <b>{}</b> &middot; batch {} &middot; budget {}</p>",
        escape(m.opt_str("name").unwrap_or("?")),
        escape(m.opt_str("date").unwrap_or("?")),
        escape(m.opt_str("solver").unwrap_or("?")),
        m.opt_i64("batch").unwrap_or(0),
        m.opt_i64("sample_budget").unwrap_or(0),
    );
    if let Some(t) = m.req("target").ok().and_then(sdl_conf::Value::as_seq) {
        let ch: Vec<i64> = t.iter().filter_map(sdl_conf::Value::as_i64).collect();
        if ch.len() == 3 {
            let _ = write!(
                html,
                "<p>target <span class=\"swatch\" style=\"background:rgb({r},{g},{b})\"></span>RGB ({r}, {g}, {b})</p>",
                r = ch[0],
                g = ch[1],
                b = ch[2]
            );
        }
    }
    html
}

/// Percent-encode everything outside the URL-safe unreserved set (for
/// embedding ids and blob refs in portal URLs).
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// The Figure-3 *left* view as a served HTML page: experiment card plus a
/// per-run index table, each run linking to its `/runs/<run>` detail page.
pub fn render_summary_html(portal: &AcdcPortal, experiment_id: &str) -> String {
    let samples = portal.samples(experiment_id);
    let runs: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.run).collect();
    let best = samples.iter().map(|s| s.score).fold(f64::INFINITY, f64::min);

    let mut html = page_head(&format!("ACDC portal — {experiment_id}"));
    let _ = write!(html, "<h1>ACDC portal — {}</h1>", escape(experiment_id));
    html.push_str(&meta_block(portal, experiment_id));
    let _ = write!(
        html,
        "<p>{} runs &middot; {} samples{}</p>",
        runs.len(),
        samples.len(),
        if best.is_finite() { format!(" &middot; best score {best:.2}") } else { String::new() }
    );
    html.push_str("<table><tr><th>run</th><th>samples</th><th>best score</th></tr>");
    for run in runs {
        let in_run: Vec<_> = samples.iter().filter(|s| s.run == run).collect();
        let run_best = in_run.iter().map(|s| s.score).fold(f64::INFINITY, f64::min);
        let _ = write!(
            html,
            "<tr><td><a href=\"/runs/{run}?experiment={id}\">run #{run}</a></td>\
             <td>{}</td><td>{run_best:.2}</td></tr>",
            in_run.len(),
            id = url_encode(experiment_id),
        );
    }
    html.push_str("</table></body></html>");
    html
}

/// The Figure-3 *right* view as a served HTML page: the detailed sample
/// table of one run. Plate images are referenced through `/blobs/<ref>`
/// URLs for the serving layer to resolve (not inlined).
pub fn render_run_html(portal: &AcdcPortal, experiment_id: &str, run: u32) -> String {
    let samples: Vec<SampleRecord> =
        portal.samples(experiment_id).into_iter().filter(|s| s.run == run).collect();

    let mut html = page_head(&format!("ACDC portal — {experiment_id}, run #{run}"));
    let _ = write!(
        html,
        "<h1>ACDC portal — {} <small>run #{run}</small></h1>\
         <p><a href=\"/summary?experiment={id}\">&larr; experiment summary</a></p>",
        escape(experiment_id),
        id = url_encode(experiment_id),
    );
    html.push_str(&meta_block(portal, experiment_id));
    if let Some(r) = samples.iter().find_map(|s| s.image_ref.clone()) {
        let _ =
            write!(html, "<img alt=\"plate frame, run {run}\" src=\"/blobs/{}\">", url_encode(&r));
    }
    if samples.is_empty() {
        html.push_str("<p>(no samples)</p></body></html>");
        return html;
    }
    html.push_str(
        "<table><tr><th>sample</th><th>well</th><th>measured</th><th>target</th>\
         <th>score</th><th>best</th><th>elapsed (min)</th></tr>",
    );
    for s in &samples {
        let _ = write!(
            html,
            "<tr><td>{}</td><td class=\"well\">{}</td>\
             <td><span class=\"swatch\" style=\"background:rgb({mr},{mg},{mb})\"></span>({mr},{mg},{mb})</td>\
             <td><span class=\"swatch\" style=\"background:rgb({tr},{tg},{tb})\"></span>({tr},{tg},{tb})</td>\
             <td>{:.2}</td><td>{:.2}</td><td>{:.1}</td></tr>",
            s.sample,
            escape(&s.well),
            s.score,
            s.best_so_far,
            s.elapsed_s / 60.0,
            mr = s.measured[0],
            mg = s.measured[1],
            mb = s.measured[2],
            tr = s.target[0],
            tg = s.target[1],
            tb = s.target[2],
        );
    }
    html.push_str("</table></body></html>");
    html
}

/// Render one experiment as a standalone HTML page. When `store` is given,
/// archived plate images (BMP blobs) are inlined as data URIs.
pub fn render_html(portal: &AcdcPortal, experiment_id: &str, store: Option<&BlobStore>) -> String {
    let samples = portal.samples(experiment_id);

    let mut html = page_head(&format!("ACDC portal — {experiment_id}"));
    let _ = write!(html, "<h1>ACDC portal — {}</h1>", escape(experiment_id));
    html.push_str(&meta_block(portal, experiment_id));
    let best = samples.iter().map(|s| s.score).fold(f64::INFINITY, f64::min);
    let runs: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.run).collect();
    let _ = write!(
        html,
        "<p>{} runs &middot; {} samples{}</p>",
        runs.len(),
        samples.len(),
        if best.is_finite() { format!(" &middot; best score {best:.2}") } else { String::new() }
    );

    for run in runs {
        let in_run: Vec<_> = samples.iter().filter(|s| s.run == run).collect();
        let _ = write!(html, "<h2>run #{run} ({} samples)</h2>", in_run.len());
        // One image per run (all samples of a run share the frame).
        if let (Some(store), Some(r)) = (store, in_run.iter().find_map(|s| s.image_ref.clone())) {
            if let Some(bytes) = store.get(&BlobRef(r)) {
                let _ = write!(
                    html,
                    "<img alt=\"plate frame, run {run}\" src=\"data:image/bmp;base64,{}\">",
                    base64(&bytes)
                );
            }
        }
        html.push_str(
            "<table><tr><th>sample</th><th>well</th><th>measured</th><th>target</th>\
             <th>score</th><th>best</th><th>elapsed (min)</th></tr>",
        );
        for s in in_run {
            let _ = write!(
                html,
                "<tr><td>{}</td><td class=\"well\">{}</td>\
                 <td><span class=\"swatch\" style=\"background:rgb({mr},{mg},{mb})\"></span>({mr},{mg},{mb})</td>\
                 <td><span class=\"swatch\" style=\"background:rgb({tr},{tg},{tb})\"></span>({tr},{tg},{tb})</td>\
                 <td>{:.2}</td><td>{:.2}</td><td>{:.1}</td></tr>",
                s.sample,
                escape(&s.well),
                s.score,
                s.best_so_far,
                s.elapsed_s / 60.0,
                mr = s.measured[0],
                mg = s.measured[1],
                mb = s.measured[2],
                tr = s.target[0],
                tg = s.target[1],
                tb = s.target[2],
            );
        }
        html.push_str("</table>");
    }
    html.push_str("</body></html>");
    html
}

impl AcdcPortal {
    /// Write the HTML view of one experiment to `path`.
    pub fn export_html(
        &self,
        path: &std::path::Path,
        experiment_id: &str,
        store: Option<&BlobStore>,
    ) -> std::io::Result<()> {
        std::fs::write(path, render_html(self, experiment_id, store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExperimentRecord, SampleRecord};
    use bytes::Bytes;

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn html_contains_samples_and_swatches() {
        let portal = AcdcPortal::new();
        portal.ingest(
            ExperimentRecord {
                experiment_id: "e1".into(),
                name: "ColorPickerRPL".into(),
                date: "2023-08-16".into(),
                target: [120, 120, 120],
                solver: "genetic".into(),
                batch: 2,
                sample_budget: 4,
            }
            .to_value(),
        );
        let store = BlobStore::in_memory();
        let blob = store.put(Bytes::from_static(b"BMfakeimage"));
        for i in 1..=4u32 {
            portal.ingest(
                SampleRecord {
                    experiment_id: "e1".into(),
                    run: i.div_ceil(2),
                    sample: i,
                    well: format!("A{i}"),
                    ratios: vec![0.2; 4],
                    volumes_ul: vec![8.0; 4],
                    measured: [118, 121, 119],
                    target: [120, 120, 120],
                    score: 30.0 / i as f64,
                    best_so_far: 30.0 / i as f64,
                    elapsed_s: i as f64 * 228.0,
                    batch_wall_s: None,
                    image_ref: Some(blob.0.clone()),
                }
                .to_value(),
            );
        }
        let html = render_html(&portal, "e1", Some(&store));
        assert!(html.contains("<h1>ACDC portal — e1</h1>"));
        assert!(html.contains("run #1") && html.contains("run #2"));
        assert!(html.contains("rgb(118,121,119)"));
        assert!(html.contains("data:image/bmp;base64,"));
        assert!(html.contains("ColorPickerRPL"));
        // 4 sample rows.
        assert_eq!(html.matches("<tr><td>").count(), 4);
    }

    #[test]
    fn html_without_store_omits_images() {
        let portal = AcdcPortal::new();
        let html = render_html(&portal, "missing", None);
        assert!(html.contains("0 runs"));
        assert!(!html.contains("data:image"));
    }

    #[test]
    fn escape_neutralizes_markup() {
        assert_eq!(escape("<b>&x"), "&lt;b&gt;&amp;x");
    }

    fn served_portal() -> AcdcPortal {
        let portal = AcdcPortal::new();
        portal.ingest(
            ExperimentRecord {
                experiment_id: "e1".into(),
                name: "ColorPickerRPL".into(),
                date: "2023-08-16".into(),
                target: [120, 120, 120],
                solver: "genetic".into(),
                batch: 2,
                sample_budget: 4,
            }
            .to_value(),
        );
        for i in 1..=4u32 {
            portal.ingest(
                SampleRecord {
                    experiment_id: "e1".into(),
                    run: i.div_ceil(2),
                    sample: i,
                    well: format!("A{i}"),
                    ratios: vec![0.2; 4],
                    volumes_ul: vec![8.0; 4],
                    measured: [118, 121, 119],
                    target: [120, 120, 120],
                    score: 30.0 / i as f64,
                    best_so_far: 30.0 / i as f64,
                    elapsed_s: i as f64 * 228.0,
                    batch_wall_s: None,
                    image_ref: Some("blob:0011aabb".into()),
                }
                .to_value(),
            );
        }
        portal
    }

    #[test]
    fn summary_view_links_runs() {
        let html = render_summary_html(&served_portal(), "e1");
        assert!(html.contains("<h1>ACDC portal — e1</h1>"));
        assert!(html.contains("2 runs &middot; 4 samples"));
        assert!(html.contains("href=\"/runs/1?experiment=e1\""));
        assert!(html.contains("href=\"/runs/2?experiment=e1\""));
        assert!(html.contains("ColorPickerRPL"));
    }

    #[test]
    fn run_view_links_blobs_not_data_uris() {
        let html = render_run_html(&served_portal(), "e1", 2);
        assert!(html.contains("run #2"));
        assert!(html.contains("src=\"/blobs/blob%3A0011aabb\""));
        assert!(!html.contains("data:image"));
        assert_eq!(html.matches("<tr><td>").count(), 2);
        assert!(html.contains("href=\"/summary?experiment=e1\""));
        // Unknown run renders an empty page, not an error.
        let html = render_run_html(&served_portal(), "e1", 99);
        assert!(html.contains("no samples"));
    }

    #[test]
    fn url_encode_escapes_reserved() {
        assert_eq!(url_encode("blob:ab/1 2"), "blob%3Aab%2F1%202");
        assert_eq!(url_encode("safe-Name_0.~"), "safe-Name_0.~");
    }
}
