//! Color-difference metrics.
//!
//! The paper grades samples by "delta e distance to the target" (§2.5) and
//! plots "Euclidean distance in three-dimensional color space" for Figure 4.
//! All common formulas are provided; [`DeltaE`] selects one at run time so
//! applications can swap the grading metric without touching the solvers.

use crate::lab::Lab;
use crate::rgb::Rgb8;

/// ΔE\*ab (CIE 1976): plain Euclidean distance in Lab.
pub fn cie76(a: Lab, b: Lab) -> f64 {
    let dl = a.l - b.l;
    let da = a.a - b.a;
    let db = a.b - b.b;
    (dl * dl + da * da + db * db).sqrt()
}

/// ΔE\*94 (graphic-arts weights, kL = kC = kH = 1).
pub fn cie94(a: Lab, b: Lab) -> f64 {
    let dl = a.l - b.l;
    let c1 = a.chroma();
    let c2 = b.chroma();
    let dc = c1 - c2;
    let da = a.a - b.a;
    let db = a.b - b.b;
    let dh2 = (da * da + db * db - dc * dc).max(0.0);
    let sl = 1.0;
    let sc = 1.0 + 0.045 * c1;
    let sh = 1.0 + 0.015 * c1;
    let t = (dl / sl).powi(2) + (dc / sc).powi(2) + dh2 / (sh * sh);
    t.sqrt()
}

/// Symmetric ΔE\*94: the graphic-arts weights computed from the geometric
/// mean of both chromas instead of the first (reference) chroma, so the
/// result is independent of argument order. This is the form
/// [`crate::Objective::Cie94`] optimizes; the classic reference-based
/// [`cie94`] stays available for grading against a designated standard.
pub fn cie94_symmetric(a: Lab, b: Lab) -> f64 {
    let dl = a.l - b.l;
    let c1 = a.chroma();
    let c2 = b.chroma();
    let dc = c1 - c2;
    let da = a.a - b.a;
    let db = a.b - b.b;
    let dh2 = (da * da + db * db - dc * dc).max(0.0);
    let c_gm = (c1 * c2).sqrt();
    let sc = 1.0 + 0.045 * c_gm;
    let sh = 1.0 + 0.015 * c_gm;
    let t = dl * dl + (dc / sc).powi(2) + dh2 / (sh * sh);
    t.sqrt()
}

/// ΔE00 (CIEDE2000), the current CIE recommendation. Implements the full
/// Sharma–Wu–Dalal formulation; validated against their published test data.
pub fn ciede2000(lab1: Lab, lab2: Lab) -> f64 {
    let (l1, a1, b1) = (lab1.l, lab1.a, lab1.b);
    let (l2, a2, b2) = (lab2.l, lab2.a, lab2.b);

    let c1 = (a1 * a1 + b1 * b1).sqrt();
    let c2 = (a2 * a2 + b2 * b2).sqrt();
    let c_bar = (c1 + c2) / 2.0;
    let c_bar7 = c_bar.powi(7);
    let g = 0.5 * (1.0 - (c_bar7 / (c_bar7 + 25.0_f64.powi(7))).sqrt());

    let a1p = (1.0 + g) * a1;
    let a2p = (1.0 + g) * a2;
    let c1p = (a1p * a1p + b1 * b1).sqrt();
    let c2p = (a2p * a2p + b2 * b2).sqrt();

    let h1p = if c1p == 0.0 { 0.0 } else { positive_deg(b1.atan2(a1p).to_degrees()) };
    let h2p = if c2p == 0.0 { 0.0 } else { positive_deg(b2.atan2(a2p).to_degrees()) };

    let dl_p = l2 - l1;
    let dc_p = c2p - c1p;

    let dh_p = if c1p * c2p == 0.0 {
        0.0
    } else {
        let d = h2p - h1p;
        if d.abs() <= 180.0 {
            d
        } else if d > 180.0 {
            d - 360.0
        } else {
            d + 360.0
        }
    };
    let dh_big = 2.0 * (c1p * c2p).sqrt() * (dh_p.to_radians() / 2.0).sin();

    let l_bar = (l1 + l2) / 2.0;
    let c_bar_p = (c1p + c2p) / 2.0;

    let h_bar = if c1p * c2p == 0.0 {
        h1p + h2p
    } else {
        let d = (h1p - h2p).abs();
        let s = h1p + h2p;
        if d <= 180.0 {
            s / 2.0
        } else if s < 360.0 {
            (s + 360.0) / 2.0
        } else {
            (s - 360.0) / 2.0
        }
    };

    let t = 1.0 - 0.17 * (h_bar - 30.0).to_radians().cos()
        + 0.24 * (2.0 * h_bar).to_radians().cos()
        + 0.32 * (3.0 * h_bar + 6.0).to_radians().cos()
        - 0.20 * (4.0 * h_bar - 63.0).to_radians().cos();

    let d_theta = 30.0 * (-((h_bar - 275.0) / 25.0).powi(2)).exp();
    let c_bar_p7 = c_bar_p.powi(7);
    let r_c = 2.0 * (c_bar_p7 / (c_bar_p7 + 25.0_f64.powi(7))).sqrt();
    let l50 = (l_bar - 50.0).powi(2);
    let s_l = 1.0 + 0.015 * l50 / (20.0 + l50).sqrt();
    let s_c = 1.0 + 0.045 * c_bar_p;
    let s_h = 1.0 + 0.015 * c_bar_p * t;
    let r_t = -(2.0 * d_theta).to_radians().sin() * r_c;

    let dl = dl_p / s_l;
    let dc = dc_p / s_c;
    let dh = dh_big / s_h;
    (dl * dl + dc * dc + dh * dh + r_t * dc * dh).sqrt()
}

fn positive_deg(d: f64) -> f64 {
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// Runtime-selectable color-difference metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaE {
    /// Euclidean distance in 8-bit RGB — the metric of Figure 4.
    #[default]
    RgbEuclidean,
    /// ΔE\*ab 1976 in Lab.
    Cie76,
    /// ΔE\*94 in Lab.
    Cie94,
    /// CIEDE2000 in Lab.
    Ciede2000,
}

impl DeltaE {
    /// Difference between two 8-bit colors under this metric.
    pub fn between(self, a: Rgb8, b: Rgb8) -> f64 {
        match self {
            DeltaE::RgbEuclidean => a.distance(b),
            DeltaE::Cie76 => cie76(Lab::from_rgb8(a), Lab::from_rgb8(b)),
            DeltaE::Cie94 => cie94(Lab::from_rgb8(a), Lab::from_rgb8(b)),
            DeltaE::Ciede2000 => ciede2000(Lab::from_rgb8(a), Lab::from_rgb8(b)),
        }
    }

    /// Short machine-readable name (used in configs and published records).
    pub fn name(self) -> &'static str {
        match self {
            DeltaE::RgbEuclidean => "rgb",
            DeltaE::Cie76 => "cie76",
            DeltaE::Cie94 => "cie94",
            DeltaE::Ciede2000 => "ciede2000",
        }
    }

    /// Parse the name produced by [`DeltaE::name`].
    pub fn parse(s: &str) -> Option<DeltaE> {
        match s {
            "rgb" => Some(DeltaE::RgbEuclidean),
            "cie76" => Some(DeltaE::Cie76),
            "cie94" => Some(DeltaE::Cie94),
            "ciede2000" => Some(DeltaE::Ciede2000),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Selected pairs from the Sharma, Wu & Dalal CIEDE2000 test data set
    /// (Color Res. Appl. 30(1), 2005). Expected values have 4 decimals.
    const SHARMA_CASES: &[(Lab, Lab, f64)] = &[
        (Lab::new(50.0, 2.6772, -79.7751), Lab::new(50.0, 0.0, -82.7485), 2.0425),
        (Lab::new(50.0, 3.1571, -77.2803), Lab::new(50.0, 0.0, -82.7485), 2.8615),
        (Lab::new(50.0, 2.8361, -74.0200), Lab::new(50.0, 0.0, -82.7485), 3.4412),
        (Lab::new(50.0, -1.3802, -84.2814), Lab::new(50.0, 0.0, -82.7485), 1.0000),
        (Lab::new(50.0, -1.1848, -84.8006), Lab::new(50.0, 0.0, -82.7485), 1.0000),
        (Lab::new(50.0, -0.9009, -85.5211), Lab::new(50.0, 0.0, -82.7485), 1.0000),
        (Lab::new(50.0, 0.0, 0.0), Lab::new(50.0, -1.0, 2.0), 2.3669),
        (Lab::new(50.0, -1.0, 2.0), Lab::new(50.0, 0.0, 0.0), 2.3669),
        (Lab::new(50.0, 2.4900, -0.0010), Lab::new(50.0, -2.4900, 0.0009), 7.1792),
        (Lab::new(50.0, 2.4900, -0.0010), Lab::new(50.0, -2.4900, 0.0011), 7.2195),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(50.0, 0.0, -2.5000), 4.3065),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(73.0, 25.0, -18.0), 27.1492),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(61.0, -5.0, 29.0), 22.8977),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(56.0, -27.0, -3.0), 31.9030),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(58.0, 24.0, 15.0), 19.4535),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(50.0, 3.1736, 0.5854), 1.0000),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(50.0, 3.2972, 0.0), 1.0000),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(50.0, 1.8634, 0.5757), 1.0000),
        (Lab::new(50.0, 2.5000, 0.0), Lab::new(50.0, 3.2592, 0.3350), 1.0000),
        (Lab::new(60.2574, -34.0099, 36.2677), Lab::new(60.4626, -34.1751, 39.4387), 1.2644),
        (Lab::new(63.0109, -31.0961, -5.8663), Lab::new(62.8187, -29.7946, -4.0864), 1.2630),
        (Lab::new(61.2901, 3.7196, -5.3901), Lab::new(61.4292, 2.2480, -4.9620), 1.8731),
        (Lab::new(35.0831, -44.1164, 3.7933), Lab::new(35.0232, -40.0716, 1.5901), 1.8645),
        (Lab::new(22.7233, 20.0904, -46.6940), Lab::new(23.0331, 14.9730, -42.5619), 2.0373),
        (Lab::new(36.4612, 47.8580, 18.3852), Lab::new(36.2715, 50.5065, 21.2231), 1.4146),
        (Lab::new(90.8027, -2.0831, 1.4410), Lab::new(91.1528, -1.6435, 0.0447), 1.4441),
        (Lab::new(90.9257, -0.5406, -0.9208), Lab::new(88.6381, -0.8985, -0.7239), 1.5381),
        (Lab::new(6.7747, -0.2908, -2.4247), Lab::new(5.8714, -0.0985, -2.2286), 0.6377),
        (Lab::new(2.0776, 0.0795, -1.1350), Lab::new(0.9033, -0.0636, -0.5514), 0.9082),
    ];

    #[test]
    fn ciede2000_matches_sharma_dataset() {
        for (i, &(a, b, expect)) in SHARMA_CASES.iter().enumerate() {
            let got = ciede2000(a, b);
            assert!((got - expect).abs() < 1e-4, "case {i}: got {got}, expected {expect}");
        }
    }

    #[test]
    fn all_metrics_are_zero_on_identity() {
        let c = Rgb8::new(120, 120, 120);
        for m in [DeltaE::RgbEuclidean, DeltaE::Cie76, DeltaE::Cie94, DeltaE::Ciede2000] {
            assert_eq!(m.between(c, c), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn cie76_is_symmetric_and_positive() {
        let a = Lab::new(50.0, 10.0, -10.0);
        let b = Lab::new(60.0, -5.0, 20.0);
        assert_eq!(cie76(a, b), cie76(b, a));
        assert!(cie76(a, b) > 0.0);
    }

    #[test]
    fn cie94_upper_bounded_by_cie76() {
        // The S weights are >= 1, so ΔE94 <= ΔE76 for any pair.
        let pairs = [
            (Lab::new(50.0, 30.0, 10.0), Lab::new(55.0, 25.0, 12.0)),
            (Lab::new(20.0, -10.0, -40.0), Lab::new(22.0, -12.0, -35.0)),
        ];
        for (a, b) in pairs {
            assert!(cie94(a, b) <= cie76(a, b) + 1e-12);
        }
    }

    #[test]
    fn cie94_symmetric_is_symmetric_and_agrees_on_equal_chroma() {
        let a = Lab::new(50.0, 30.0, 10.0);
        let b = Lab::new(55.0, 25.0, 12.0);
        assert_eq!(cie94_symmetric(a, b), cie94_symmetric(b, a));
        // When both colors share a chroma, the geometric mean equals the
        // reference chroma and the two variants coincide.
        let c = Lab::new(40.0, 30.0, 0.0);
        let d = Lab::new(60.0, 0.0, 30.0);
        assert!((cie94_symmetric(c, d) - cie94(c, d)).abs() < 1e-12);
        assert_eq!(cie94_symmetric(a, a), 0.0);
    }

    #[test]
    fn metric_names_roundtrip() {
        for m in [DeltaE::RgbEuclidean, DeltaE::Cie76, DeltaE::Cie94, DeltaE::Ciede2000] {
            assert_eq!(DeltaE::parse(m.name()), Some(m));
        }
        assert_eq!(DeltaE::parse("nope"), None);
    }

    #[test]
    fn rgb_metric_matches_figure4_units() {
        // One unit step on one channel = distance 1.
        assert_eq!(
            DeltaE::RgbEuclidean.between(Rgb8::new(120, 120, 120), Rgb8::new(121, 120, 120)),
            1.0
        );
    }
}
