//! CIE XYZ tristimulus values (D65, 2° observer) and conversion from/to
//! linear sRGB primaries.

use crate::rgb::LinRgb;

/// CIE XYZ tristimulus, normalized so that D65 white has Y = 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Xyz {
    /// X tristimulus component.
    pub x: f64,
    /// Y tristimulus component (luminance).
    pub y: f64,
    /// Z tristimulus component.
    pub z: f64,
}

/// D65 reference white.
pub const D65: Xyz = Xyz { x: 0.950_47, y: 1.0, z: 1.088_83 };

impl Xyz {
    /// Construct from tristimulus components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Xyz { x, y, z }
    }

    /// Linear sRGB → XYZ (IEC 61966-2-1 matrix).
    pub fn from_linear(c: LinRgb) -> Xyz {
        Xyz {
            x: 0.412_456_4 * c.r + 0.357_576_1 * c.g + 0.180_437_5 * c.b,
            y: 0.212_672_9 * c.r + 0.715_152_2 * c.g + 0.072_175_0 * c.b,
            z: 0.019_333_9 * c.r + 0.119_192_0 * c.g + 0.950_304_1 * c.b,
        }
    }

    /// XYZ → linear sRGB (inverse matrix). May leave the sRGB gamut.
    pub fn to_linear(self) -> LinRgb {
        LinRgb {
            r: 3.240_454_2 * self.x - 1.537_138_5 * self.y - 0.498_531_4 * self.z,
            g: -0.969_266_0 * self.x + 1.876_010_8 * self.y + 0.041_556_0 * self.z,
            b: 0.055_643_4 * self.x - 0.204_025_9 * self.y + 1.057_225_2 * self.z,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn white_maps_to_d65() {
        let w = Xyz::from_linear(LinRgb::WHITE);
        assert!(close(w.x, D65.x, 1e-4));
        assert!(close(w.y, D65.y, 1e-4));
        assert!(close(w.z, D65.z, 1e-4));
    }

    #[test]
    fn black_maps_to_zero() {
        let k = Xyz::from_linear(LinRgb::BLACK);
        assert!(close(k.x, 0.0, 1e-12));
        assert!(close(k.y, 0.0, 1e-12));
        assert!(close(k.z, 0.0, 1e-12));
    }

    #[test]
    fn matrix_roundtrip() {
        for &(r, g, b) in &[
            (0.2, 0.5, 0.8),
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.0, 0.0, 1.0),
            (0.33, 0.33, 0.33),
        ] {
            let c = LinRgb::new(r, g, b);
            let back = Xyz::from_linear(c).to_linear();
            assert!(close(back.r, r, 1e-6));
            assert!(close(back.g, g, 1e-6));
            assert!(close(back.b, b, 1e-6));
        }
    }

    #[test]
    fn luminance_weights_green_most() {
        let r = Xyz::from_linear(LinRgb::new(1.0, 0.0, 0.0)).y;
        let g = Xyz::from_linear(LinRgb::new(0.0, 1.0, 0.0)).y;
        let b = Xyz::from_linear(LinRgb::new(0.0, 0.0, 1.0)).y;
        assert!(g > r && r > b);
        assert!(close(r + g + b, 1.0, 1e-4));
    }
}
