//! Dye stocks: the four component liquids of the color-picker application
//! (paper §2.1: "cyan, yellow, magenta, and black dyes").
//!
//! Each dye is characterized by its decadic absorbance per microliter of
//! stock dispensed into a well, in the three linear-RGB camera bands. The
//! default coefficients are calibrated so the paper's target color
//! RGB (120, 120, 120) lies in the interior of the reachable set (a
//! black-dominant mixture with small CMY trims — see `mix` tests).

/// One dye stock.
#[derive(Debug, Clone, PartialEq)]
pub struct Dye {
    /// Human-readable name (also used in OT-2 protocols and portal records).
    pub name: String,
    /// Decadic absorbance added per µL of this stock, per linear-RGB band.
    pub absorbance_per_ul: [f64; 3],
    /// Kubelka–Munk K/S contribution per µL, per band (for the KM model).
    pub ks_per_ul: [f64; 3],
}

impl Dye {
    /// Construct a dye with the given per-µL absorbance; K/S follows.
    pub fn new(name: impl Into<String>, absorbance_per_ul: [f64; 3]) -> Self {
        // By default derive K/S from absorbance: a dye that absorbs strongly
        // also shifts K/S strongly. The factor keeps the two models in a
        // comparable lightness range.
        let ks =
            [absorbance_per_ul[0] * 2.3, absorbance_per_ul[1] * 2.3, absorbance_per_ul[2] * 2.3];
        Dye { name: name.into(), absorbance_per_ul, ks_per_ul: ks }
    }
}

/// The set of dye stocks loaded into the OT-2 reservoirs, plus the per-dye
/// dispense ceiling that maps solver ratios to volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct DyeSet {
    /// The stocks, in reservoir order.
    pub dyes: Vec<Dye>,
    /// Maximum volume of a single dye per well, µL. Solver ratio 1.0 maps to
    /// this volume.
    pub max_volume_ul: f64,
}

impl DyeSet {
    /// The default CMYK dye set used throughout the benchmark.
    pub fn cmyk() -> DyeSet {
        DyeSet {
            dyes: vec![
                Dye::new("cyan", [0.024_7, 0.003_6, 0.001_6]),
                Dye::new("magenta", [0.002_9, 0.022_1, 0.003_4]),
                Dye::new("yellow", [0.000_65, 0.001_6, 0.019_5]),
                Dye::new("black", [0.020_8, 0.022_1, 0.022_8]),
            ],
            max_volume_ul: 40.0,
        }
    }

    /// A three-dye (CMY) set, for experiments on problem dimensionality.
    pub fn cmy() -> DyeSet {
        let mut set = DyeSet::cmyk();
        set.dyes.truncate(3);
        set
    }

    /// Number of dyes.
    pub fn len(&self) -> usize {
        self.dyes.len()
    }

    /// True if the set holds no dyes.
    pub fn is_empty(&self) -> bool {
        self.dyes.is_empty()
    }

    /// Index of a dye by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.dyes.iter().position(|d| d.name == name)
    }

    /// Dye names in reservoir order.
    pub fn names(&self) -> Vec<&str> {
        self.dyes.iter().map(|d| d.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmyk_has_four_named_dyes() {
        let set = DyeSet::cmyk();
        assert_eq!(set.len(), 4);
        assert_eq!(set.names(), vec!["cyan", "magenta", "yellow", "black"]);
        assert!(!set.is_empty());
    }

    #[test]
    fn index_lookup() {
        let set = DyeSet::cmyk();
        assert_eq!(set.index_of("black"), Some(3));
        assert_eq!(set.index_of("chartreuse"), None);
    }

    #[test]
    fn each_dye_absorbs_its_complement_most() {
        let set = DyeSet::cmyk();
        let c = &set.dyes[0].absorbance_per_ul;
        assert!(c[0] > c[1] && c[0] > c[2], "cyan absorbs red most");
        let m = &set.dyes[1].absorbance_per_ul;
        assert!(m[1] > m[0] && m[1] > m[2], "magenta absorbs green most");
        let y = &set.dyes[2].absorbance_per_ul;
        assert!(y[2] > y[0] && y[2] > y[1], "yellow absorbs blue most");
        let k = &set.dyes[3].absorbance_per_ul;
        let spread =
            k.iter().cloned().fold(f64::MIN, f64::max) - k.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.005, "black is near-neutral");
    }

    #[test]
    fn cmy_truncates() {
        assert_eq!(DyeSet::cmy().len(), 3);
    }
}
