//! sRGB and linear RGB representations.
//!
//! The camera reports 8-bit sRGB; the physics of dye mixing happens in
//! linear light. Conversions follow IEC 61966-2-1.

use std::fmt;

/// An 8-bit sRGB color, as reported by the camera module and used for the
/// paper's Figure-4 score (Euclidean distance in 0–255 RGB space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb8 {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb8 {
    /// Construct from channel bytes.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb8 { r, g, b }
    }

    /// The paper's fixed target color, RGB = (120, 120, 120).
    pub const PAPER_TARGET: Rgb8 = Rgb8::new(120, 120, 120);

    /// Euclidean distance in 8-bit RGB space — the y-axis of Figure 4.
    pub fn distance(self, other: Rgb8) -> f64 {
        let dr = self.r as f64 - other.r as f64;
        let dg = self.g as f64 - other.g as f64;
        let db = self.b as f64 - other.b as f64;
        (dr * dr + dg * dg + db * db).sqrt()
    }

    /// Decode to linear light.
    pub fn to_linear(self) -> LinRgb {
        LinRgb {
            r: srgb_to_linear(self.r as f64 / 255.0),
            g: srgb_to_linear(self.g as f64 / 255.0),
            b: srgb_to_linear(self.b as f64 / 255.0),
        }
    }

    /// Channels as an array.
    pub fn channels(self) -> [u8; 3] {
        [self.r, self.g, self.b]
    }
}

impl fmt::Display for Rgb8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.r, self.g, self.b)
    }
}

/// Linear-light RGB with channels nominally in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinRgb {
    /// Red channel (linear light).
    pub r: f64,
    /// Green channel (linear light).
    pub g: f64,
    /// Blue channel (linear light).
    pub b: f64,
}

impl LinRgb {
    /// Construct from linear channel values.
    pub const fn new(r: f64, g: f64, b: f64) -> Self {
        LinRgb { r, g, b }
    }

    /// Linear white (all channels 1).
    pub const WHITE: LinRgb = LinRgb::new(1.0, 1.0, 1.0);
    /// Linear black (all channels 0).
    pub const BLACK: LinRgb = LinRgb::new(0.0, 0.0, 0.0);

    /// Clamp channels into `[0, 1]`.
    pub fn clamped(self) -> LinRgb {
        LinRgb { r: self.r.clamp(0.0, 1.0), g: self.g.clamp(0.0, 1.0), b: self.b.clamp(0.0, 1.0) }
    }

    /// Encode to 8-bit sRGB (clamping out-of-gamut values).
    pub fn to_srgb(self) -> Rgb8 {
        let c = self.clamped();
        Rgb8 {
            r: (linear_to_srgb(c.r) * 255.0).round() as u8,
            g: (linear_to_srgb(c.g) * 255.0).round() as u8,
            b: (linear_to_srgb(c.b) * 255.0).round() as u8,
        }
    }

    /// Per-channel multiply (transmittance filtering).
    pub fn filter(self, t: LinRgb) -> LinRgb {
        LinRgb { r: self.r * t.r, g: self.g * t.g, b: self.b * t.b }
    }

    /// Uniform scale.
    pub fn scale(self, k: f64) -> LinRgb {
        LinRgb { r: self.r * k, g: self.g * k, b: self.b * k }
    }

    /// Channel-wise addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: LinRgb) -> LinRgb {
        LinRgb { r: self.r + other.r, g: self.g + other.g, b: self.b + other.b }
    }

    /// Channels as an array.
    pub fn channels(self) -> [f64; 3] {
        [self.r, self.g, self.b]
    }
}

/// sRGB electro-optical transfer function (decode), input/output in `[0,1]`.
pub fn srgb_to_linear(s: f64) -> f64 {
    if s <= 0.04045 {
        s / 12.92
    } else {
        ((s + 0.055) / 1.055).powf(2.4)
    }
}

/// Inverse OETF (encode), input/output in `[0,1]`.
pub fn linear_to_srgb(l: f64) -> f64 {
    if l <= 0.003_130_8 {
        12.92 * l
    } else {
        1.055 * l.powf(1.0 / 2.4) - 0.055
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_function_endpoints() {
        assert_eq!(srgb_to_linear(0.0), 0.0);
        assert!((srgb_to_linear(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(linear_to_srgb(0.0), 0.0);
        assert!((linear_to_srgb(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_all_bytes() {
        for v in 0..=255u8 {
            let c = Rgb8::new(v, v, v);
            assert_eq!(c.to_linear().to_srgb(), c, "byte {v}");
        }
    }

    #[test]
    fn middle_gray_is_nonlinear() {
        // sRGB 120 is darker than 47% linear: the transfer curve matters.
        let lin = Rgb8::new(120, 120, 120).to_linear();
        assert!((lin.r - 0.1874).abs() < 1e-3, "got {}", lin.r);
    }

    #[test]
    fn distance_matches_hand_computation() {
        let a = Rgb8::new(120, 120, 120);
        let b = Rgb8::new(123, 116, 120);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Rgb8::new(10, 200, 30);
        let b = Rgb8::new(250, 0, 99);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn filter_and_clamp() {
        let white = LinRgb::WHITE;
        let t = LinRgb::new(0.5, 2.0, -0.5);
        let f = white.filter(t).clamped();
        assert_eq!(f, LinRgb::new(0.5, 1.0, 0.0));
    }

    #[test]
    fn srgb_encode_clamps_out_of_gamut() {
        let c = LinRgb::new(1.5, -0.2, 0.5);
        let s = c.to_srgb();
        assert_eq!(s.r, 255);
        assert_eq!(s.g, 0);
    }
}
