//! Mixing models: how a recipe of dye volumes becomes a well color.
//!
//! The paper treats color formation as a black box; the simulator needs an
//! explicit forward model. Three are provided:
//!
//! * [`BeerLambert`] (default) — each µL of stock adds decadic absorbance;
//!   the camera sees the illuminant filtered by the resulting transmittance.
//!   This is the standard model for dilute transparent dyes in water.
//! * [`KubelkaMunk`] — two-flux reflectance for scattering media; additive
//!   in K/S. Slightly different nonlinearity; used for the E7 ablation.
//! * [`LinearMix`] — naive volume-weighted average of dye colors. Physically
//!   wrong but popular as a first approximation; included as the ablation's
//!   strawman.
//!
//! All models are deterministic; sensor noise belongs to the camera module.

use crate::dye::DyeSet;
use crate::recipe::Recipe;
use crate::rgb::LinRgb;

/// A forward model from recipe to the well's true (noise-free) color.
pub trait MixModel: Send + Sync {
    /// The color of a well prepared with `recipe`, in linear RGB.
    fn well_color(&self, set: &DyeSet, recipe: &Recipe) -> LinRgb;

    /// Short machine-readable model name.
    fn name(&self) -> &'static str;
}

/// Beer–Lambert absorbance model (default).
#[derive(Debug, Clone, PartialEq)]
pub struct BeerLambert {
    /// The light that would be measured off a blank well (ring-light white).
    pub illuminant: LinRgb,
}

impl Default for BeerLambert {
    fn default() -> Self {
        BeerLambert { illuminant: LinRgb::WHITE }
    }
}

impl MixModel for BeerLambert {
    fn well_color(&self, set: &DyeSet, recipe: &Recipe) -> LinRgb {
        debug_assert_eq!(recipe.arity(), set.len());
        let mut absorbance = [0.0f64; 3];
        for (dye, &v) in set.dyes.iter().zip(recipe.volumes_ul()) {
            for (a, eps) in absorbance.iter_mut().zip(&dye.absorbance_per_ul) {
                *a += eps * v;
            }
        }
        let t = LinRgb::new(
            10f64.powf(-absorbance[0]),
            10f64.powf(-absorbance[1]),
            10f64.powf(-absorbance[2]),
        );
        self.illuminant.filter(t)
    }

    fn name(&self) -> &'static str {
        "beer-lambert"
    }
}

/// Kubelka–Munk two-flux reflectance model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KubelkaMunk;

impl MixModel for KubelkaMunk {
    fn well_color(&self, set: &DyeSet, recipe: &Recipe) -> LinRgb {
        debug_assert_eq!(recipe.arity(), set.len());
        let mut chans = [0.0f64; 3];
        for (ch, out) in chans.iter_mut().enumerate() {
            let ks: f64 = set
                .dyes
                .iter()
                .zip(recipe.volumes_ul())
                .map(|(dye, &v)| dye.ks_per_ul[ch] * v)
                .sum();
            // R_inf = 1 + K/S - sqrt((K/S)^2 + 2 K/S)
            *out = 1.0 + ks - (ks * ks + 2.0 * ks).sqrt();
        }
        LinRgb::new(chans[0], chans[1], chans[2])
    }

    fn name(&self) -> &'static str {
        "kubelka-munk"
    }
}

/// Naive volume-weighted linear blending of dye colors with white.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearMix;

impl LinearMix {
    /// The display color assigned to a pure dye: the Beer–Lambert color of a
    /// full-ceiling dispense of that dye alone.
    fn dye_color(set: &DyeSet, idx: usize) -> LinRgb {
        let d = &set.dyes[idx];
        LinRgb::new(
            10f64.powf(-d.absorbance_per_ul[0] * set.max_volume_ul),
            10f64.powf(-d.absorbance_per_ul[1] * set.max_volume_ul),
            10f64.powf(-d.absorbance_per_ul[2] * set.max_volume_ul),
        )
    }
}

impl MixModel for LinearMix {
    fn well_color(&self, set: &DyeSet, recipe: &Recipe) -> LinRgb {
        debug_assert_eq!(recipe.arity(), set.len());
        let capacity = set.max_volume_ul * set.len() as f64;
        let mut acc = LinRgb::BLACK;
        let mut used = 0.0;
        for (i, &v) in recipe.volumes_ul().iter().enumerate() {
            let w = v / capacity;
            acc = acc.add(Self::dye_color(set, i).scale(w));
            used += w;
        }
        acc.add(LinRgb::WHITE.scale((1.0 - used).max(0.0))).clamped()
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Runtime-selectable mixing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MixKind {
    /// Beer–Lambert absorbance (default).
    #[default]
    BeerLambert,
    /// Kubelka–Munk two-flux.
    KubelkaMunk,
    /// Naive linear blending.
    Linear,
    /// Full 16-band spectral Beer–Lambert through camera response curves.
    Spectral,
}

impl MixKind {
    /// Instantiate the model.
    pub fn model(self) -> Box<dyn MixModel> {
        match self {
            MixKind::BeerLambert => Box::new(BeerLambert::default()),
            MixKind::KubelkaMunk => Box::new(KubelkaMunk),
            MixKind::Linear => Box::new(LinearMix),
            MixKind::Spectral => Box::new(crate::spectrum::SpectralMix::cmyk()),
        }
    }

    /// Name as used in configs.
    pub fn name(self) -> &'static str {
        match self {
            MixKind::BeerLambert => "beer-lambert",
            MixKind::KubelkaMunk => "kubelka-munk",
            MixKind::Linear => "linear",
            MixKind::Spectral => "spectral",
        }
    }

    /// Parse the name produced by [`MixKind::name`].
    pub fn parse(s: &str) -> Option<MixKind> {
        match s {
            "beer-lambert" => Some(MixKind::BeerLambert),
            "kubelka-munk" => Some(MixKind::KubelkaMunk),
            "linear" => Some(MixKind::Linear),
            "spectral" => Some(MixKind::Spectral),
            _ => None,
        }
    }
}

/// A mixing model compiled for repeated evaluation: the enum dispatch
/// replaces the `Box<dyn MixModel>` the old hot path re-allocated per well,
/// and the spectral variant carries its precomputed matrices
/// ([`crate::spectrum::PreparedSpectral`]). Colors are bit-identical to the
/// boxed models; `Clone + Debug` so world state stays freely copyable.
#[derive(Debug, Clone, PartialEq)]
pub enum MixEngine {
    /// Beer–Lambert absorbance.
    BeerLambert(BeerLambert),
    /// Kubelka–Munk two-flux.
    KubelkaMunk(KubelkaMunk),
    /// Naive linear blending.
    Linear(LinearMix),
    /// Compiled 16-band spectral model (boxed: it carries ~1 KB of
    /// precomputed tables).
    Spectral(Box<crate::spectrum::PreparedSpectral>),
}

impl MixEngine {
    /// Compile `kind` for repeated per-well evaluation.
    pub fn new(kind: MixKind) -> MixEngine {
        match kind {
            MixKind::BeerLambert => MixEngine::BeerLambert(BeerLambert::default()),
            MixKind::KubelkaMunk => MixEngine::KubelkaMunk(KubelkaMunk),
            MixKind::Linear => MixEngine::Linear(LinearMix),
            MixKind::Spectral => {
                MixEngine::Spectral(Box::new(crate::spectrum::PreparedSpectral::cmyk()))
            }
        }
    }

    /// Which model kind this engine runs.
    pub fn kind(&self) -> MixKind {
        match self {
            MixEngine::BeerLambert(_) => MixKind::BeerLambert,
            MixEngine::KubelkaMunk(_) => MixKind::KubelkaMunk,
            MixEngine::Linear(_) => MixKind::Linear,
            MixEngine::Spectral(_) => MixKind::Spectral,
        }
    }

    /// The color of a well prepared with `recipe`, in linear RGB.
    pub fn well_color(&self, set: &DyeSet, recipe: &Recipe) -> LinRgb {
        match self {
            MixEngine::BeerLambert(m) => m.well_color(set, recipe),
            MixEngine::KubelkaMunk(m) => m.well_color(set, recipe),
            MixEngine::Linear(m) => m.well_color(set, recipe),
            MixEngine::Spectral(m) => m.well_color(set, recipe),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgb::Rgb8;

    fn set() -> DyeSet {
        DyeSet::cmyk()
    }

    fn blank() -> Recipe {
        Recipe::new(vec![0.0; 4]).unwrap()
    }

    #[test]
    fn empty_well_is_white_in_all_models() {
        for kind in [MixKind::BeerLambert, MixKind::KubelkaMunk, MixKind::Linear, MixKind::Spectral]
        {
            let c = kind.model().well_color(&set(), &blank());
            assert_eq!(c.to_srgb(), Rgb8::new(255, 255, 255), "{}", kind.name());
        }
    }

    #[test]
    fn paper_target_is_reachable_under_beer_lambert() {
        // Black-dominant mixture with CMY trim, found by the analytic solver
        // (see sdl-solvers::analytic); verifies calibration of the dye set.
        let recipe = Recipe::new(vec![7.4, 6.2, 6.4, 25.0]).unwrap();
        let c = BeerLambert::default().well_color(&set(), &recipe).to_srgb();
        assert!(
            c.distance(Rgb8::PAPER_TARGET) < 8.0,
            "calibration recipe lands at {c}, target {}",
            Rgb8::PAPER_TARGET
        );
    }

    #[test]
    fn more_dye_is_darker_beer_lambert() {
        let m = BeerLambert::default();
        let mut prev = f64::INFINITY;
        for steps in 1..=8 {
            let v = steps as f64 * 5.0;
            let recipe = Recipe::new(vec![0.0, 0.0, 0.0, v]).unwrap();
            let lum = m.well_color(&set(), &recipe).g;
            assert!(lum < prev, "luminance must fall as black dye increases");
            prev = lum;
        }
    }

    #[test]
    fn cyan_dye_leaves_cyan_tint() {
        let m = BeerLambert::default();
        let recipe = Recipe::new(vec![30.0, 0.0, 0.0, 0.0]).unwrap();
        let c = m.well_color(&set(), &recipe);
        assert!(c.g > c.r && c.b > c.r, "cyan absorbs red: {c:?}");
    }

    #[test]
    fn kubelka_munk_is_monotone_and_bounded() {
        let m = KubelkaMunk;
        let mut prev = 1.1;
        for steps in 0..=10 {
            let recipe = Recipe::new(vec![0.0, 0.0, 0.0, steps as f64 * 4.0]).unwrap();
            let c = m.well_color(&set(), &recipe);
            for ch in c.channels() {
                assert!((0.0..=1.0).contains(&ch));
            }
            assert!(c.g <= prev);
            prev = c.g;
        }
    }

    #[test]
    fn linear_model_diverges_from_beer_lambert() {
        // The ablation hinges on the models disagreeing away from the corners.
        let recipe = Recipe::new(vec![20.0, 20.0, 20.0, 20.0]).unwrap();
        let a = BeerLambert::default().well_color(&set(), &recipe).to_srgb();
        let b = LinearMix.well_color(&set(), &recipe).to_srgb();
        assert!(a.distance(b) > 20.0, "models too similar: {a} vs {b}");
    }

    #[test]
    fn engine_matches_boxed_models_bitwise() {
        for kind in [MixKind::BeerLambert, MixKind::KubelkaMunk, MixKind::Linear, MixKind::Spectral]
        {
            let boxed = kind.model();
            let engine = MixEngine::new(kind);
            assert_eq!(engine.kind(), kind);
            for i in 0..40 {
                let v = vec![
                    (i % 4) as f64 * 9.0,
                    ((i / 4) % 4) as f64 * 9.0,
                    ((i / 16) % 4) as f64 * 9.0,
                    (i % 7) as f64 * 5.0,
                ];
                let recipe = Recipe::new(v.clone()).unwrap();
                let a = boxed.well_color(&set(), &recipe);
                let b = engine.well_color(&set(), &recipe);
                assert_eq!(a.r.to_bits(), b.r.to_bits(), "{} {v:?}", kind.name());
                assert_eq!(a.g.to_bits(), b.g.to_bits(), "{} {v:?}", kind.name());
                assert_eq!(a.b.to_bits(), b.b.to_bits(), "{} {v:?}", kind.name());
            }
        }
    }

    #[test]
    fn mix_kind_roundtrip() {
        for kind in [MixKind::BeerLambert, MixKind::KubelkaMunk, MixKind::Linear, MixKind::Spectral]
        {
            assert_eq!(MixKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.model().name(), kind.name());
        }
        assert_eq!(MixKind::parse("ideal"), None);
    }
}
