//! CAM16 color appearance model and the CAM16-UCS uniform space.
//!
//! The pipeline is sRGB → XYZ → CAT16 cone-like responses → post-adaptation
//! signals → appearance correlates (J, M, h) → UCS coordinates (J′, a′, b′),
//! following Li et al. (2017), *Comprehensive color solutions: CAM16, CAT16,
//! and CAM16-UCS*. Euclidean distance in (J′, a′, b′) is the CAM16-UCS ΔE′,
//! the perceptually uniform counterpart of [`crate::ciede2000`].
//!
//! The model is validated against the published worked example (sample
//! XYZ = (19.01, 20.00, 21.78) under L_A = 318.31) in the unit tests.

use crate::rgb::Rgb8;
use crate::xyz::Xyz;
use std::sync::OnceLock;

/// CAT16 matrix: XYZ → cone-like RGB responses.
const M16: [[f64; 3]; 3] = [
    [0.401288, 0.650173, -0.051461],
    [-0.250268, 1.204414, 0.045854],
    [-0.002079, 0.048952, 0.953127],
];

fn mul3(m: &[[f64; 3]; 3], v: [f64; 3]) -> [f64; 3] {
    [
        m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
        m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
        m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
    ]
}

/// Post-adaptation nonlinearity (includes the +0.1 offset of the published
/// formulation; the matching −0.305 appears in the achromatic response).
fn adapt(x: f64, f_l: f64) -> f64 {
    let t = (f_l * x.abs() / 100.0).powf(0.42);
    (400.0 * t / (t + 27.13)).copysign(x) + 0.1
}

/// Precomputed CAM16 viewing conditions (average surround).
///
/// Constructing one runs the model's illuminant-dependent setup once; the
/// per-color conversion then only needs the cached degree-of-adaptation
/// scales and the achromatic response of the white.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewingConditions {
    /// Surround impact factor c (0.69 for average surround).
    c: f64,
    /// Chromatic induction factor N_c.
    n_c: f64,
    /// Luminance-level adaptation factor F_L.
    f_l: f64,
    /// Background induction factor n = Y_b / Y_w.
    n: f64,
    /// Base exponential nonlinearity z.
    z: f64,
    /// Brightness induction factor N_bb (= N_cb).
    n_bb: f64,
    /// Per-channel degree-of-adaptation scale applied to cone responses.
    d_rgb: [f64; 3],
    /// Achromatic response of the adopted white.
    a_w: f64,
}

impl ViewingConditions {
    /// Viewing conditions for an adopted `white` (crate convention: Y = 1
    /// for the reference white), adapting luminance `l_a` in cd/m² and
    /// relative background luminance `y_b` (0–100), average surround.
    pub fn new(white: Xyz, l_a: f64, y_b: f64) -> ViewingConditions {
        let (f, c, n_c) = (1.0, 0.69, 1.0); // average surround
        let xyz_w = [white.x * 100.0, white.y * 100.0, white.z * 100.0];
        let y_w = xyz_w[1];
        let k = 1.0 / (5.0 * l_a + 1.0);
        let k4 = k.powi(4);
        let f_l = 0.2 * k4 * 5.0 * l_a + 0.1 * (1.0 - k4).powi(2) * (5.0 * l_a).cbrt();
        let n = y_b / y_w;
        let z = 1.48 + n.sqrt();
        let n_bb = 0.725 * n.recip().powf(0.2);
        let d = (f * (1.0 - (1.0 / 3.6) * ((-l_a - 42.0) / 92.0).exp())).clamp(0.0, 1.0);
        let rgb_w = mul3(&M16, xyz_w);
        let d_rgb = [
            d * y_w / rgb_w[0] + 1.0 - d,
            d * y_w / rgb_w[1] + 1.0 - d,
            d * y_w / rgb_w[2] + 1.0 - d,
        ];
        let aw = [
            adapt(rgb_w[0] * d_rgb[0], f_l),
            adapt(rgb_w[1] * d_rgb[1], f_l),
            adapt(rgb_w[2] * d_rgb[2], f_l),
        ];
        let a_w = (2.0 * aw[0] + aw[1] + 0.05 * aw[2] - 0.305) * n_bb;
        ViewingConditions { c, n_c, f_l, n, z, n_bb, d_rgb, a_w }
    }

    /// The conditions every [`Jab::from_rgb8`] conversion uses: the crate's
    /// D65 white, dim-lab adapting luminance L_A = 64/π/5 ≈ 4.07 cd/m² and
    /// a 20% gray background — the same defaults the kasi-kule crate uses
    /// for sRGB material.
    pub fn srgb() -> &'static ViewingConditions {
        static SRGB: OnceLock<ViewingConditions> = OnceLock::new();
        SRGB.get_or_init(|| {
            let white = Xyz::from_linear(crate::rgb::LinRgb::WHITE);
            ViewingConditions::new(white, 64.0 / std::f64::consts::PI / 5.0, 20.0)
        })
    }
}

/// CAM16 appearance correlates of one color (intermediate form).
struct Cam16 {
    /// Lightness J.
    j: f64,
    /// Colorfulness M.
    m: f64,
    /// Hue angle in radians.
    h: f64,
}

fn cam16_of(xyz: Xyz, vc: &ViewingConditions) -> Cam16 {
    let rgb = mul3(&M16, [xyz.x * 100.0, xyz.y * 100.0, xyz.z * 100.0]);
    let r_a = adapt(rgb[0] * vc.d_rgb[0], vc.f_l);
    let g_a = adapt(rgb[1] * vc.d_rgb[1], vc.f_l);
    let b_a = adapt(rgb[2] * vc.d_rgb[2], vc.f_l);
    let a = r_a - 12.0 * g_a / 11.0 + b_a / 11.0;
    let b = (r_a + g_a - 2.0 * b_a) / 9.0;
    let h = b.atan2(a);
    let e_t = 0.25 * ((h + 2.0).cos() + 3.8);
    let big_a = ((2.0 * r_a + g_a + 0.05 * b_a - 0.305) * vc.n_bb).max(0.0);
    let j = 100.0 * (big_a / vc.a_w).powf(vc.c * vc.z);
    let t =
        (50_000.0 / 13.0 * vc.n_c * vc.n_bb * e_t * a.hypot(b)) / (r_a + g_a + 21.0 / 20.0 * b_a);
    let c = t.powf(0.9) * (j / 100.0).sqrt() * (1.64 - 0.29_f64.powf(vc.n)).powf(0.73);
    Cam16 { j, m: c * vc.f_l.powf(0.25), h }
}

/// A color in CAM16-UCS coordinates (J′, a′, b′).
///
/// Euclidean [`distance`](Jab::distance) here is the CAM16-UCS ΔE′ color
/// difference. A just-noticeable difference is ≈ 1; black↔white is ≈ 100.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Jab {
    /// UCS lightness J′ (0 black – 100 diffuse white).
    pub j: f64,
    /// UCS red–green axis a′.
    pub a: f64,
    /// UCS yellow–blue axis b′.
    pub b: f64,
}

impl Jab {
    /// Construct from UCS components.
    pub const fn new(j: f64, a: f64, b: f64) -> Self {
        Jab { j, a, b }
    }

    /// Convert from CIE XYZ (crate convention: white Y = 1) under `vc`.
    pub fn from_xyz(xyz: Xyz, vc: &ViewingConditions) -> Jab {
        let Cam16 { j, m, h } = cam16_of(xyz, vc);
        let jp = 1.7 * j / (1.0 + 0.007 * j);
        let mp = (1.0 + 0.0228 * m).ln() / 0.0228;
        Jab { j: jp, a: mp * h.cos(), b: mp * h.sin() }
    }

    /// Convert from 8-bit sRGB under [`ViewingConditions::srgb`].
    pub fn from_rgb8(c: Rgb8) -> Jab {
        Jab::from_xyz(Xyz::from_linear(c.to_linear()), ViewingConditions::srgb())
    }

    /// CAM16-UCS ΔE′: Euclidean distance in (J′, a′, b′).
    pub fn distance(self, other: Jab) -> f64 {
        let dj = self.j - other.j;
        let da = self.a - other.a;
        let db = self.b - other.b;
        (dj * dj + da * da + db * db).sqrt()
    }
}

/// CAM16-UCS ΔE′ between two 8-bit sRGB colors (convenience wrapper).
pub fn cam16ucs(a: Rgb8, b: Rgb8) -> f64 {
    Jab::from_rgb8(a).distance(Jab::from_rgb8(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    /// The published CAM16 worked example (Li et al. 2017, case 1): gray
    /// sample XYZ = (19.01, 20.00, 21.78) under white (95.05, 100, 108.88),
    /// L_A = 318.31, Y_b = 20, average surround.
    #[test]
    fn matches_published_worked_example() {
        let vc = ViewingConditions::new(Xyz::new(0.9505, 1.0, 1.0888), 318.31, 20.0);
        let c = cam16_of(Xyz::new(0.1901, 0.2000, 0.2178), &vc);
        assert!(close(c.j, 41.731_208, 1e-3), "J = {}", c.j);
        assert!(close(c.m, 0.107_437, 1e-4), "M = {}", c.m);
        let h_deg = c.h.to_degrees().rem_euclid(360.0);
        assert!(close(h_deg, 217.067_960, 1e-2), "h = {h_deg}");
    }

    /// Values cross-checked against an independent implementation of the
    /// published equations under the crate's sRGB viewing conditions.
    #[test]
    fn srgb_reference_values() {
        let cases: &[(Rgb8, f64, f64, f64)] = &[
            (Rgb8::new(255, 255, 255), 100.000000, -1.897564, -1.072816),
            (Rgb8::new(120, 120, 120), 52.976722, -1.207722, -0.682855),
            (Rgb8::new(255, 0, 0), 59.181552, 40.819896, 21.152636),
            (Rgb8::new(0, 255, 0), 86.548338, -35.488318, 27.500740),
            (Rgb8::new(0, 0, 255), 36.247686, 8.571862, -37.869997),
            (Rgb8::new(30, 120, 200), 51.508308, -6.795439, -26.725358),
            (Rgb8::new(200, 50, 120), 52.163723, 35.154246, -1.074761),
            (Rgb8::new(17, 210, 93), 74.449400, -31.153843, 17.799781),
        ];
        for &(rgb, j, a, b) in cases {
            let jab = Jab::from_rgb8(rgb);
            assert!(close(jab.j, j, 1e-4), "{rgb}: J' = {}", jab.j);
            assert!(close(jab.a, a, 1e-4), "{rgb}: a' = {}", jab.a);
            assert!(close(jab.b, b, 1e-4), "{rgb}: b' = {}", jab.b);
        }
    }

    #[test]
    fn black_is_the_ucs_origin() {
        let k = Jab::from_rgb8(Rgb8::new(0, 0, 0));
        assert!(close(k.j, 0.0, 1e-9));
        assert!(close(k.a, 0.0, 1e-9));
        assert!(close(k.b, 0.0, 1e-9));
    }

    #[test]
    fn white_has_full_lightness() {
        let w = Jab::from_rgb8(Rgb8::new(255, 255, 255));
        assert!(close(w.j, 100.0, 1e-6), "J' = {}", w.j);
        // D < 1 leaves the adopted white a slightly chromatic blue-ish
        // point, so a'/b' are small but not exactly zero.
        assert!(w.a.hypot(w.b) < 3.0);
    }

    #[test]
    fn black_white_distance_is_about_100() {
        let d = cam16ucs(Rgb8::new(0, 0, 0), Rgb8::new(255, 255, 255));
        assert!(close(d, 100.023_756, 1e-3), "dE' = {d}");
    }

    #[test]
    fn hue_quadrants_have_expected_signs() {
        // Offsets are measured from the (slightly chromatic) gray axis.
        let gray = Jab::from_rgb8(Rgb8::new(128, 128, 128));
        let red = Jab::from_rgb8(Rgb8::new(255, 0, 0));
        let green = Jab::from_rgb8(Rgb8::new(0, 255, 0));
        let blue = Jab::from_rgb8(Rgb8::new(0, 0, 255));
        let yellow = Jab::from_rgb8(Rgb8::new(255, 255, 0));
        assert!(red.a - gray.a > 10.0);
        assert!(green.a - gray.a < -10.0);
        assert!(blue.b - gray.b < -10.0);
        assert!(yellow.b - gray.b > 10.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_identity() {
        let a = Rgb8::new(12, 200, 98);
        let b = Rgb8::new(240, 13, 77);
        assert_eq!(cam16ucs(a, b), cam16ucs(b, a));
        assert_eq!(cam16ucs(a, a), 0.0);
    }

    #[test]
    fn small_rgb_steps_are_small_ucs_steps() {
        // The paper's match threshold talks in single-digit units for all
        // perceptual metrics; a 5-unit RGB step near gray lands near 4 ΔE'.
        let d = cam16ucs(Rgb8::new(120, 120, 120), Rgb8::new(123, 116, 120));
        assert!(close(d, 4.028_307, 1e-4), "dE' = {d}");
    }
}
