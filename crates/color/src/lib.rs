//! `sdl-color` — color science for the color-matching benchmark.
//!
//! Everything the closed loop needs to reason about color:
//!
//! * [`Rgb8`] / [`LinRgb`] — 8-bit sRGB (what the camera reports) and
//!   linear light (where the physics happens);
//! * [`Xyz`] / [`Lab`] — CIE spaces for perceptual grading;
//! * [`Jab`] — CAM16-UCS appearance coordinates (sRGB viewing conditions);
//! * [`DeltaE`] — the grading metrics ("delta e distance", paper §2.5),
//!   including the plain RGB Euclidean distance plotted in Figure 4;
//! * [`Objective`] — metric × color space, the campaign's loss-function
//!   axis (`score(measured, target)`);
//! * [`DyeSet`] / [`Recipe`] — the four CMYK dye stocks and per-well
//!   dispense volumes;
//! * [`MixModel`] implementations — Beer–Lambert (default), Kubelka–Munk
//!   and naive linear blending, the forward models that substitute for the
//!   physical dye chemistry.
//!
//! # Example
//!
//! ```
//! use sdl_color::{BeerLambert, DeltaE, DyeSet, MixModel, Recipe, Rgb8};
//!
//! let set = DyeSet::cmyk();
//! let recipe = Recipe::from_ratios(&[0.18, 0.16, 0.16, 0.62], &set).unwrap();
//! let color = BeerLambert::default().well_color(&set, &recipe).to_srgb();
//! let score = DeltaE::RgbEuclidean.between(color, Rgb8::PAPER_TARGET);
//! assert!(score < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cam16;
mod deltae;
mod dye;
mod lab;
mod mix;
mod objective;
mod quant;
mod recipe;
mod rgb;
mod spectrum;
mod xyz;

pub use cam16::{cam16ucs, Jab, ViewingConditions};
pub use deltae::{cie76, cie94, cie94_symmetric, ciede2000, DeltaE};
pub use dye::{Dye, DyeSet};
pub use lab::Lab;
pub use mix::{BeerLambert, KubelkaMunk, LinearMix, MixEngine, MixKind, MixModel};
pub use objective::{in_space, ColorSpace, Objective};
pub use quant::SrgbQuantizer;
pub use recipe::{Recipe, RecipeError};
pub use rgb::{linear_to_srgb, srgb_to_linear, LinRgb, Rgb8};
pub use spectrum::{
    band_center, spectral_cmyk, CameraResponse, PreparedSpectral, SpectralDye, SpectralMix,
    Spectrum, BANDS,
};
pub use xyz::{Xyz, D65};
