//! CIE L\*a\*b\* (D65) — the space in which the solvers' "delta e" grades
//! are defined (paper §2.5).

use crate::rgb::Rgb8;
use crate::xyz::{Xyz, D65};

/// A CIELAB color (D65 reference white).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Lab {
    /// Lightness, 0 (black) – 100 (diffuse white).
    pub l: f64,
    /// Green–red opponent axis.
    pub a: f64,
    /// Blue–yellow opponent axis.
    pub b: f64,
}

const DELTA: f64 = 6.0 / 29.0;

fn f(t: f64) -> f64 {
    if t > DELTA * DELTA * DELTA {
        t.cbrt()
    } else {
        t / (3.0 * DELTA * DELTA) + 4.0 / 29.0
    }
}

fn f_inv(t: f64) -> f64 {
    if t > DELTA {
        t * t * t
    } else {
        3.0 * DELTA * DELTA * (t - 4.0 / 29.0)
    }
}

impl Lab {
    /// Construct from L*, a*, b* components.
    pub const fn new(l: f64, a: f64, b: f64) -> Self {
        Lab { l, a, b }
    }

    /// Convert from CIE XYZ (D65).
    pub fn from_xyz(c: Xyz) -> Lab {
        let fx = f(c.x / D65.x);
        let fy = f(c.y / D65.y);
        let fz = f(c.z / D65.z);
        Lab { l: 116.0 * fy - 16.0, a: 500.0 * (fx - fy), b: 200.0 * (fy - fz) }
    }

    /// Convert back to CIE XYZ (D65).
    pub fn to_xyz(self) -> Xyz {
        let fy = (self.l + 16.0) / 116.0;
        let fx = fy + self.a / 500.0;
        let fz = fy - self.b / 200.0;
        Xyz { x: D65.x * f_inv(fx), y: D65.y * f_inv(fy), z: D65.z * f_inv(fz) }
    }

    /// Convert from 8-bit sRGB.
    pub fn from_rgb8(c: Rgb8) -> Lab {
        Lab::from_xyz(Xyz::from_linear(c.to_linear()))
    }

    /// Chroma: distance from the neutral axis.
    pub fn chroma(self) -> f64 {
        (self.a * self.a + self.b * self.b).sqrt()
    }

    /// Hue angle in degrees, in `[0, 360)`.
    pub fn hue_deg(self) -> f64 {
        if self.a == 0.0 && self.b == 0.0 {
            return 0.0;
        }
        let h = self.b.atan2(self.a).to_degrees();
        if h < 0.0 {
            h + 360.0
        } else {
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgb::LinRgb;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn white_is_l100_neutral() {
        let lab = Lab::from_xyz(Xyz::from_linear(LinRgb::WHITE));
        assert!(close(lab.l, 100.0, 1e-3));
        assert!(close(lab.a, 0.0, 1e-3));
        assert!(close(lab.b, 0.0, 1e-3));
    }

    #[test]
    fn black_is_l0() {
        let lab = Lab::from_xyz(Xyz::from_linear(LinRgb::BLACK));
        assert!(close(lab.l, 0.0, 1e-6));
    }

    #[test]
    fn xyz_roundtrip() {
        for &(x, y, z) in &[(0.2, 0.3, 0.4), (0.9, 1.0, 1.0), (0.05, 0.02, 0.01), (0.4, 0.4, 0.4)] {
            let lab = Lab::from_xyz(Xyz::new(x, y, z));
            let back = lab.to_xyz();
            assert!(close(back.x, x, 1e-9));
            assert!(close(back.y, y, 1e-9));
            assert!(close(back.z, z, 1e-9));
        }
    }

    #[test]
    fn paper_target_gray_is_neutral_midtone() {
        let lab = Lab::from_rgb8(Rgb8::PAPER_TARGET);
        assert!(close(lab.a, 0.0, 0.5));
        assert!(close(lab.b, 0.0, 0.5));
        assert!(lab.l > 45.0 && lab.l < 56.0, "L = {}", lab.l);
    }

    #[test]
    fn red_has_positive_a() {
        let lab = Lab::from_rgb8(Rgb8::new(200, 20, 20));
        assert!(lab.a > 40.0);
    }

    #[test]
    fn hue_angle_quadrants() {
        assert!(close(Lab::new(50.0, 10.0, 0.0).hue_deg(), 0.0, 1e-9));
        assert!(close(Lab::new(50.0, 0.0, 10.0).hue_deg(), 90.0, 1e-9));
        assert!(close(Lab::new(50.0, -10.0, 0.0).hue_deg(), 180.0, 1e-9));
        assert!(close(Lab::new(50.0, 0.0, -10.0).hue_deg(), 270.0, 1e-9));
        assert_eq!(Lab::new(50.0, 0.0, 0.0).hue_deg(), 0.0);
    }

    #[test]
    fn chroma_is_euclidean_in_ab() {
        assert!(close(Lab::new(50.0, 3.0, 4.0).chroma(), 5.0, 1e-12));
    }
}
