//! Spectral color formation: a higher-fidelity forward model.
//!
//! The RGB-band Beer–Lambert model in `mix` treats each camera channel as a
//! single absorbance number. Real dyes absorb across a continuous spectrum
//! and the camera integrates that spectrum through three broad response
//! curves — which is why *metamerism* exists (different spectra, same RGB).
//! This module models 16 bands over 400–700 nm: dye absorption spectra,
//! an illuminant, camera response curves, and a [`SpectralMix`] that plugs
//! into the same [`MixModel`] interface as the band models.

use crate::dye::DyeSet;
use crate::mix::MixModel;
use crate::recipe::Recipe;
use crate::rgb::LinRgb;

/// Number of spectral bands.
pub const BANDS: usize = 16;
/// Shortest modeled wavelength, nm.
pub const LAMBDA_MIN: f64 = 400.0;
/// Longest modeled wavelength, nm.
pub const LAMBDA_MAX: f64 = 700.0;

/// A sampled spectrum (unit depends on context: absorbance, power, response).
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum(pub [f64; BANDS]);

/// Center wavelength of band `i`, nm.
pub fn band_center(i: usize) -> f64 {
    let step = (LAMBDA_MAX - LAMBDA_MIN) / BANDS as f64;
    LAMBDA_MIN + (i as f64 + 0.5) * step
}

impl Spectrum {
    /// The zero spectrum.
    pub fn zero() -> Spectrum {
        Spectrum([0.0; BANDS])
    }

    /// A constant spectrum.
    pub fn flat(v: f64) -> Spectrum {
        Spectrum([v; BANDS])
    }

    /// A Gaussian band: peak `amplitude` at `center_nm` with the given
    /// standard deviation.
    pub fn gaussian(center_nm: f64, sigma_nm: f64, amplitude: f64) -> Spectrum {
        let mut s = [0.0; BANDS];
        for (i, v) in s.iter_mut().enumerate() {
            let d = (band_center(i) - center_nm) / sigma_nm;
            *v = amplitude * (-0.5 * d * d).exp();
        }
        Spectrum(s)
    }

    /// Pointwise sum with another spectrum, scaled by `k`.
    pub fn add_scaled(&mut self, other: &Spectrum, k: f64) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += k * b;
        }
    }

    /// Inner product with another spectrum.
    pub fn dot(&self, other: &Spectrum) -> f64 {
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }
}

/// One dye's absorption spectrum (decadic absorbance per µL dispensed).
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralDye {
    /// Dye name (matches the RGB dye set order).
    pub name: String,
    /// Absorbance per µL in each band.
    pub absorbance_per_ul: Spectrum,
}

/// The camera's three response curves plus the illuminant.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraResponse {
    /// Red channel sensitivity.
    pub red: Spectrum,
    /// Green channel sensitivity.
    pub green: Spectrum,
    /// Blue channel sensitivity.
    pub blue: Spectrum,
    /// Illuminant power spectrum (the ring light).
    pub illuminant: Spectrum,
}

impl Default for CameraResponse {
    fn default() -> Self {
        CameraResponse {
            red: Spectrum::gaussian(600.0, 45.0, 1.0),
            green: Spectrum::gaussian(540.0, 40.0, 1.0),
            blue: Spectrum::gaussian(460.0, 35.0, 1.0),
            illuminant: Spectrum::flat(1.0), // white-ish LED ring light
        }
    }
}

impl CameraResponse {
    /// Integrate a transmittance spectrum into linear RGB, normalized so a
    /// blank well (T ≡ 1) reads pure white.
    pub fn integrate(&self, transmittance: &Spectrum) -> LinRgb {
        let weigh = |resp: &Spectrum| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..BANDS {
                let w = resp.0[i] * self.illuminant.0[i];
                num += w * transmittance.0[i];
                den += w;
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        };
        LinRgb::new(weigh(&self.red), weigh(&self.green), weigh(&self.blue))
    }
}

/// The spectral CMYK dye set: absorption bands at the complementary
/// wavelengths, calibrated to land near the RGB-band model.
pub fn spectral_cmyk() -> Vec<SpectralDye> {
    // Cyan absorbs red (~620 nm), magenta green (~540 nm), yellow blue
    // (~450 nm); black is broadband with a mild red tilt.
    let mut black = Spectrum::flat(0.021);
    black.add_scaled(&Spectrum::gaussian(440.0, 80.0, 0.003), 1.0);
    vec![
        SpectralDye {
            name: "cyan".into(),
            absorbance_per_ul: Spectrum::gaussian(620.0, 55.0, 0.028),
        },
        SpectralDye {
            name: "magenta".into(),
            absorbance_per_ul: Spectrum::gaussian(540.0, 45.0, 0.026),
        },
        SpectralDye {
            name: "yellow".into(),
            absorbance_per_ul: Spectrum::gaussian(450.0, 50.0, 0.024),
        },
        SpectralDye { name: "black".into(), absorbance_per_ul: black },
    ]
}

/// Spectral forward model: full Beer–Lambert per band, integrated through
/// the camera response. Carries its own dye spectra; the RGB [`DyeSet`]
/// passed to [`MixModel::well_color`] supplies only arity and volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralMix {
    /// Dye absorption spectra (reservoir order).
    pub dyes: Vec<SpectralDye>,
    /// Camera model.
    pub camera: CameraResponse,
}

impl SpectralMix {
    /// The default spectral CMYK setup.
    pub fn cmyk() -> SpectralMix {
        SpectralMix { dyes: spectral_cmyk(), camera: CameraResponse::default() }
    }

    /// The transmittance spectrum of a well (before camera integration).
    pub fn transmittance(&self, recipe: &Recipe) -> Spectrum {
        let mut absorbance = Spectrum::zero();
        for (dye, &v) in self.dyes.iter().zip(recipe.volumes_ul()) {
            absorbance.add_scaled(&dye.absorbance_per_ul, v);
        }
        let mut t = [0.0; BANDS];
        for (out, a) in t.iter_mut().zip(&absorbance.0) {
            *out = 10f64.powf(-a);
        }
        Spectrum(t)
    }
}

impl MixModel for SpectralMix {
    fn well_color(&self, set: &DyeSet, recipe: &Recipe) -> LinRgb {
        debug_assert_eq!(recipe.arity(), set.len());
        debug_assert_eq!(self.dyes.len(), set.len(), "spectral dye count must match the dye set");
        self.camera.integrate(&self.transmittance(recipe))
    }

    fn name(&self) -> &'static str {
        "spectral"
    }
}

/// [`SpectralMix`] compiled to fixed matrices: the dye spectra become one
/// `BANDS × dyes` absorbance matrix and the camera response × illuminant
/// products (plus their per-channel normalizers) are precomputed, so a well
/// color is two small matvecs and 16 `powf`s instead of walking the dye
/// structs. Every accumulation runs in the same order as the uncompiled
/// model, so the colors are bit-identical — the simulated measurements do
/// not change when the hot path switches to this form.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedSpectral {
    n_dyes: usize,
    /// Absorbance per µL: row-major `BANDS × n_dyes`.
    absorb: Vec<f64>,
    /// Response × illuminant weights per channel.
    weights: [[f64; BANDS]; 3],
    /// Per-channel normalizers (`Σ weights`), kept as the identical f64 the
    /// uncompiled integrator recomputes each call.
    den: [f64; 3],
}

impl PreparedSpectral {
    /// Compile a spectral model.
    pub fn new(mix: &SpectralMix) -> PreparedSpectral {
        let n_dyes = mix.dyes.len();
        let mut absorb = vec![0.0; BANDS * n_dyes];
        for (d, dye) in mix.dyes.iter().enumerate() {
            for (band, &a) in dye.absorbance_per_ul.0.iter().enumerate() {
                absorb[band * n_dyes + d] = a;
            }
        }
        let mut weights = [[0.0; BANDS]; 3];
        let mut den = [0.0; 3];
        for (ch, resp) in
            [&mix.camera.red, &mix.camera.green, &mix.camera.blue].into_iter().enumerate()
        {
            for (i, (&r, &ill)) in resp.0.iter().zip(&mix.camera.illuminant.0).enumerate() {
                let w = r * ill;
                weights[ch][i] = w;
                den[ch] += w;
            }
        }
        PreparedSpectral { n_dyes, absorb, weights, den }
    }

    /// The default spectral CMYK setup, compiled.
    pub fn cmyk() -> PreparedSpectral {
        PreparedSpectral::new(&SpectralMix::cmyk())
    }

    /// Number of dyes the model was compiled for.
    pub fn n_dyes(&self) -> usize {
        self.n_dyes
    }

    /// The well color for `volumes_ul` (one entry per dye).
    pub fn color_of(&self, volumes_ul: &[f64]) -> LinRgb {
        debug_assert_eq!(volumes_ul.len(), self.n_dyes);
        // Absorbance and transmittance per band; dye contributions
        // accumulate in dye order exactly like SpectralMix::transmittance.
        let mut t = [0.0; BANDS];
        for (band, out) in t.iter_mut().enumerate() {
            let row = &self.absorb[band * self.n_dyes..(band + 1) * self.n_dyes];
            let mut a = 0.0;
            for (&eps, &v) in row.iter().zip(volumes_ul) {
                a += v * eps;
            }
            *out = 10f64.powf(-a);
        }
        // Camera integration, band order as CameraResponse::integrate.
        let mut rgb = [0.0; 3];
        for ((out, weights), &den) in rgb.iter_mut().zip(&self.weights).zip(&self.den) {
            let mut num = 0.0;
            for (w, ti) in weights.iter().zip(&t) {
                num += w * ti;
            }
            *out = if den > 0.0 { num / den } else { 0.0 };
        }
        LinRgb::new(rgb[0], rgb[1], rgb[2])
    }
}

impl MixModel for PreparedSpectral {
    fn well_color(&self, set: &DyeSet, recipe: &Recipe) -> LinRgb {
        debug_assert_eq!(recipe.arity(), set.len());
        debug_assert_eq!(self.n_dyes, set.len(), "compiled dye count must match the dye set");
        self.color_of(recipe.volumes_ul())
    }

    fn name(&self) -> &'static str {
        "spectral"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgb::Rgb8;

    fn set() -> DyeSet {
        DyeSet::cmyk()
    }

    #[test]
    fn blank_well_is_white() {
        let m = SpectralMix::cmyk();
        let c = m.well_color(&set(), &Recipe::new(vec![0.0; 4]).unwrap());
        assert_eq!(c.to_srgb(), Rgb8::new(255, 255, 255));
    }

    #[test]
    fn band_centers_span_the_visible_range() {
        assert!((band_center(0) - 409.375).abs() < 1e-9);
        assert!((band_center(BANDS - 1) - 690.625).abs() < 1e-9);
    }

    #[test]
    fn dyes_absorb_their_complements() {
        let m = SpectralMix::cmyk();
        let one = |idx: usize| {
            let mut v = vec![0.0; 4];
            v[idx] = 30.0;
            m.well_color(&set(), &Recipe::new(v).unwrap())
        };
        let cyan = one(0);
        assert!(cyan.r < cyan.g && cyan.r < cyan.b, "cyan absorbs red: {cyan:?}");
        let magenta = one(1);
        assert!(
            magenta.g < magenta.r && magenta.g < magenta.b,
            "magenta absorbs green: {magenta:?}"
        );
        let yellow = one(2);
        assert!(yellow.b < yellow.r && yellow.b < yellow.g, "yellow absorbs blue: {yellow:?}");
        let black = one(3);
        let spread = black.channels().iter().cloned().fold(f64::MIN, f64::max)
            - black.channels().iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.12, "black is near-neutral: {black:?}");
    }

    #[test]
    fn paper_target_is_reachable_spectrally() {
        // The gray region is reachable with a black-dominant mixture, as in
        // the RGB-band model (exact ratios differ slightly).
        let m = SpectralMix::cmyk();
        let mut best = f64::INFINITY;
        for k in 0..40 {
            let v = k as f64;
            let recipe = Recipe::new(vec![4.0, 3.0, 3.0, v]).unwrap();
            let c = m.well_color(&set(), &recipe).to_srgb();
            best = best.min(c.distance(Rgb8::PAPER_TARGET));
        }
        assert!(best < 12.0, "closest gray at distance {best}");
    }

    #[test]
    fn monotone_in_every_dye() {
        let m = SpectralMix::cmyk();
        let base = Recipe::new(vec![5.0, 5.0, 5.0, 5.0]).unwrap();
        let c0 = m.well_color(&set(), &base);
        for i in 0..4 {
            let mut v = base.volumes_ul().to_vec();
            v[i] += 10.0;
            let c1 = m.well_color(&set(), &Recipe::new(v).unwrap());
            assert!(c1.r <= c0.r + 1e-12 && c1.g <= c0.g + 1e-12 && c1.b <= c0.b + 1e-12);
        }
    }

    #[test]
    fn metamerism_exists() {
        // Two different transmittance spectra integrating to (almost) the
        // same RGB: a narrow deep notch vs a broad shallow one at the same
        // channel. The camera cannot tell them apart; a spectrometer could.
        let cam = CameraResponse::default();
        // Build two absorbers in the green band.
        let narrow = Spectrum::gaussian(540.0, 15.0, 1.2);
        let broad = Spectrum::gaussian(540.0, 50.0, 0.33);
        let to_t = |a: &Spectrum| {
            let mut t = [0.0; BANDS];
            for (o, x) in t.iter_mut().zip(&a.0) {
                *o = 10f64.powf(-x);
            }
            Spectrum(t)
        };
        let t1 = to_t(&narrow);
        let t2 = to_t(&broad);
        // The spectra differ a lot...
        let spectral_gap: f64 = t1.0.iter().zip(&t2.0).map(|(a, b)| (a - b).abs()).sum();
        assert!(spectral_gap > 0.5, "spectra too similar for the test: {spectral_gap}");
        // ...but the camera integrals nearly agree on the green channel.
        let c1 = cam.integrate(&t1);
        let c2 = cam.integrate(&t2);
        assert!((c1.g - c2.g).abs() < 0.06, "green reads {:.3} vs {:.3}", c1.g, c2.g);
    }

    #[test]
    fn prepared_model_is_bit_identical_to_uncompiled() {
        let m = SpectralMix::cmyk();
        let p = PreparedSpectral::new(&m);
        assert_eq!(p.n_dyes(), 4);
        // A deterministic sweep over the recipe space, including corners.
        for i in 0..200 {
            let v = [
                (i % 5) as f64 * 8.75,
                ((i / 5) % 5) as f64 * 8.75,
                ((i / 25) % 5) as f64 * 8.75,
                ((i / 125) % 5) as f64 * 8.75,
            ];
            let recipe = Recipe::new(v.to_vec()).unwrap();
            let a = m.well_color(&set(), &recipe);
            let b = p.well_color(&set(), &recipe);
            assert_eq!(a.r.to_bits(), b.r.to_bits(), "recipe {v:?}");
            assert_eq!(a.g.to_bits(), b.g.to_bits(), "recipe {v:?}");
            assert_eq!(a.b.to_bits(), b.b.to_bits(), "recipe {v:?}");
        }
    }

    #[test]
    fn spectrum_helpers() {
        let mut s = Spectrum::zero();
        s.add_scaled(&Spectrum::flat(2.0), 0.5);
        assert_eq!(s, Spectrum::flat(1.0));
        assert!((Spectrum::flat(1.0).dot(&Spectrum::flat(2.0)) - 2.0 * BANDS as f64).abs() < 1e-12);
        let g = Spectrum::gaussian(550.0, 30.0, 1.0);
        let peak_band = (0..BANDS).max_by(|&a, &b| g.0[a].total_cmp(&g.0[b])).unwrap();
        assert!((band_center(peak_band) - 550.0).abs() < 20.0);
    }
}
