//! Recipes: per-dye volumes to dispense into one well.
//!
//! Solvers search the unit box (one ratio per dye); the application converts
//! ratios to µL via the dye set's per-dye ceiling. Keeping the two
//! representations distinct avoids unit bugs between the optimizer and the
//! liquid handler.

use crate::dye::DyeSet;
use std::fmt;

/// Volumes of each dye (µL) destined for a single well, in reservoir order.
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    volumes_ul: Vec<f64>,
}

/// Errors from recipe construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecipeError {
    /// A volume was negative, NaN or infinite.
    InvalidVolume,
    /// The number of volumes does not match the dye set.
    WrongArity {
        /// Dye-set length.
        expected: usize,
        /// Volumes supplied.
        got: usize,
    },
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeError::InvalidVolume => write!(f, "volumes must be finite and non-negative"),
            RecipeError::WrongArity { expected, got } => {
                write!(f, "expected {expected} volumes, got {got}")
            }
        }
    }
}

impl std::error::Error for RecipeError {}

impl Recipe {
    /// Build from explicit volumes.
    pub fn new(volumes_ul: Vec<f64>) -> Result<Recipe, RecipeError> {
        if volumes_ul.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(RecipeError::InvalidVolume);
        }
        Ok(Recipe { volumes_ul })
    }

    /// Map solver ratios (clamped into `[0,1]`) to volumes for `set`.
    pub fn from_ratios(ratios: &[f64], set: &DyeSet) -> Result<Recipe, RecipeError> {
        if ratios.len() != set.len() {
            return Err(RecipeError::WrongArity { expected: set.len(), got: ratios.len() });
        }
        let volumes = ratios
            .iter()
            .map(|r| {
                let r = if r.is_finite() { r.clamp(0.0, 1.0) } else { 0.0 };
                r * set.max_volume_ul
            })
            .collect();
        Ok(Recipe { volumes_ul: volumes })
    }

    /// Volumes in µL, reservoir order.
    pub fn volumes_ul(&self) -> &[f64] {
        &self.volumes_ul
    }

    /// Total dispensed volume, µL.
    pub fn total_ul(&self) -> f64 {
        self.volumes_ul.iter().sum()
    }

    /// Back-convert to ratios of the per-dye ceiling.
    pub fn ratios(&self, set: &DyeSet) -> Vec<f64> {
        self.volumes_ul.iter().map(|v| (v / set.max_volume_ul).clamp(0.0, 1.0)).collect()
    }

    /// Number of dyes this recipe covers.
    pub fn arity(&self) -> usize {
        self.volumes_ul.len()
    }

    /// True if nothing is dispensed.
    pub fn is_blank(&self) -> bool {
        self.total_ul() == 0.0
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.volumes_ul.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.1}µL")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_volumes() {
        assert_eq!(Recipe::new(vec![1.0, -0.1]), Err(RecipeError::InvalidVolume));
        assert_eq!(Recipe::new(vec![f64::NAN]), Err(RecipeError::InvalidVolume));
        assert_eq!(Recipe::new(vec![f64::INFINITY]), Err(RecipeError::InvalidVolume));
        assert!(Recipe::new(vec![0.0, 2.5]).is_ok());
    }

    #[test]
    fn ratios_roundtrip() {
        let set = DyeSet::cmyk();
        let r = Recipe::from_ratios(&[0.0, 0.25, 0.5, 1.0], &set).unwrap();
        assert_eq!(r.volumes_ul(), &[0.0, 10.0, 20.0, 40.0]);
        assert_eq!(r.ratios(&set), vec![0.0, 0.25, 0.5, 1.0]);
        assert_eq!(r.total_ul(), 70.0);
    }

    #[test]
    fn from_ratios_clamps_and_sanitizes() {
        let set = DyeSet::cmyk();
        let r = Recipe::from_ratios(&[-0.5, 1.5, f64::NAN, 0.5], &set).unwrap();
        assert_eq!(r.volumes_ul(), &[0.0, 40.0, 0.0, 20.0]);
    }

    #[test]
    fn arity_mismatch_detected() {
        let set = DyeSet::cmyk();
        assert_eq!(
            Recipe::from_ratios(&[0.5; 3], &set),
            Err(RecipeError::WrongArity { expected: 4, got: 3 })
        );
    }

    #[test]
    fn blank_detection_and_display() {
        let blank = Recipe::new(vec![0.0; 4]).unwrap();
        assert!(blank.is_blank());
        let r = Recipe::new(vec![7.4, 6.2]).unwrap();
        assert!(!r.is_blank());
        assert_eq!(r.to_string(), "[7.4µL, 6.2µL]");
    }
}
