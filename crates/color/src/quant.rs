//! Table-driven sRGB byte encoding.
//!
//! `(linear_to_srgb(l) * 255.0).round() as u8` is a monotonic step function
//! of linear light: as `l` sweeps `[0, 1]` the output byte only ever steps
//! upward, through exactly 255 transition points. [`SrgbQuantizer`]
//! precomputes those transition points — the *cutpoints* — once, after
//! which encoding a channel is a table lookup plus one comparison instead
//! of a transcendental `powf`. The construction is provably bit-exact: each
//! cutpoint is found by bisecting the f64 bit lattice against the reference
//! expression itself, so the table cannot drift from the closed form (and
//! the exhaustive boundary test keeps it honest).
//!
//! This is what lets the measurement renderer drop its dominant per-pixel
//! cost (three `powf` calls) without relaxing the encode semantics at all.

use crate::rgb::{linear_to_srgb, LinRgb, Rgb8};

/// Bins in the direct-index acceleration table. The tightest cutpoint
/// spacing is at the dark (linear) end of the curve, `1 / (255 * 12.92)`
/// ≈ `3.04e-4`; 4096 bins are `2.44e-4` wide, so no bin ever contains more
/// than one cutpoint and a lookup resolves with at most one comparison.
const BINS: usize = 4096;

/// The reference encode this table reproduces exactly.
#[inline]
fn reference_encode(l: f64) -> u8 {
    (linear_to_srgb(l) * 255.0).round() as u8
}

/// Precomputed cutpoint table for the linear-light → sRGB-byte encode.
#[derive(Debug, Clone)]
pub struct SrgbQuantizer {
    /// `cut[k]` is the smallest f64 in `[0, 1]` that encodes to a byte
    /// strictly greater than `k`; `cut[255]` is the `+∞` sentinel.
    cut: Box<[f64; 256]>,
    /// `index[i]` is the encode of the left edge of bin `i` — the starting
    /// guess a lookup refines with a single cutpoint comparison.
    index: Box<[u8; BINS]>,
}

impl Default for SrgbQuantizer {
    fn default() -> Self {
        SrgbQuantizer::new()
    }
}

impl SrgbQuantizer {
    /// Build the table (255 bisections of the f64 bit lattice; ~16 µs).
    pub fn new() -> SrgbQuantizer {
        let mut cut = Box::new([f64::INFINITY; 256]);
        for (k, slot) in cut.iter_mut().enumerate().take(255) {
            *slot = smallest_encoding_above(k as u8);
        }
        let mut index = Box::new([0u8; BINS]);
        for (i, slot) in index.iter_mut().enumerate() {
            *slot = reference_encode(i as f64 / BINS as f64);
        }
        SrgbQuantizer { cut, index }
    }

    /// The cutpoints (ascending; the last entry is the `+∞` sentinel).
    pub fn cutpoints(&self) -> &[f64; 256] {
        &self.cut
    }

    /// Encode one clamped linear channel (`l` must be in `[0, 1]`).
    /// Bit-identical to `(linear_to_srgb(l) * 255.0).round() as u8`.
    #[inline]
    pub fn encode_channel(&self, l: f64) -> u8 {
        let bin = ((l * BINS as f64) as usize).min(BINS - 1);
        let k = self.index[bin];
        // At most one cutpoint lies inside a bin, so one comparison
        // finishes the job; the sentinel makes k == 255 safe.
        k + (l >= self.cut[k as usize]) as u8
    }

    /// Encode a linear color (clamping out-of-gamut values), bit-identical
    /// to [`LinRgb::to_srgb`].
    #[inline]
    pub fn encode(&self, c: LinRgb) -> Rgb8 {
        let c = c.clamped();
        Rgb8::new(self.encode_channel(c.r), self.encode_channel(c.g), self.encode_channel(c.b))
    }
}

/// The smallest f64 in `[0, 1]` whose reference encode exceeds `k`, found
/// by bisecting the (monotonic) non-negative f64 bit lattice.
fn smallest_encoding_above(k: u8) -> f64 {
    debug_assert!(k < 255);
    // For non-negative floats the bit pattern orders identically to the
    // value, so bisection over bits finds the exact transition ULP.
    let mut lo = 0u64; // encodes to <= k (0.0 encodes to 0)
    let mut hi = 1.0f64.to_bits(); // encodes to 255 > k
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if reference_encode(f64::from_bits(mid)) > k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    f64::from_bits(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutpoints_are_strictly_monotonic() {
        let q = SrgbQuantizer::new();
        for k in 1..255 {
            assert!(
                q.cutpoints()[k] > q.cutpoints()[k - 1],
                "cutpoints must ascend: cut[{k}] = {} <= cut[{}] = {}",
                q.cutpoints()[k],
                k - 1,
                q.cutpoints()[k - 1]
            );
        }
        assert!(q.cutpoints()[255].is_infinite());
    }

    #[test]
    fn bins_never_straddle_two_cutpoints() {
        // The one-comparison lookup is only exact if no bin contains more
        // than one cutpoint; verify the spacing claim directly.
        let q = SrgbQuantizer::new();
        for k in 1..255 {
            let a = (q.cutpoints()[k - 1] * BINS as f64) as usize;
            let b = (q.cutpoints()[k] * BINS as f64) as usize;
            assert!(b > a, "cutpoints {k}-1 and {k} share bin {a}");
        }
    }

    #[test]
    fn exhaustive_bit_exactness_at_cutpoint_boundaries() {
        // For every transition: the cutpoint itself, one ULP below, and a
        // spread of ULPs on both sides must all agree with the reference.
        let q = SrgbQuantizer::new();
        for k in 0..255usize {
            let c = q.cutpoints()[k];
            for step in [1u64, 2, 17, 1024] {
                for bits in
                    [c.to_bits() - step, c.to_bits(), (c.to_bits() + step).min(1.0f64.to_bits())]
                {
                    let l = f64::from_bits(bits);
                    assert_eq!(
                        q.encode_channel(l),
                        reference_encode(l),
                        "mismatch at cutpoint {k}, l = {l:e}"
                    );
                }
            }
        }
        // Endpoints and exact bin edges.
        for i in 0..=BINS {
            let l = i as f64 / BINS as f64;
            assert_eq!(q.encode_channel(l), reference_encode(l), "bin edge {i}");
        }
    }

    #[test]
    fn dense_sweep_matches_reference() {
        let q = SrgbQuantizer::new();
        for i in 0..=200_000u64 {
            let l = i as f64 / 200_000.0;
            assert_eq!(q.encode_channel(l), reference_encode(l), "l = {l}");
        }
    }

    #[test]
    fn encode_matches_to_srgb_including_out_of_gamut() {
        let q = SrgbQuantizer::new();
        for (r, g, b) in [
            (0.0, 0.5, 1.0),
            (-0.3, 1.7, 0.003_130_8),
            (0.1874, 0.0031, 0.999_999),
            (f64::MIN_POSITIVE, 1.0 - f64::EPSILON, 0.5),
        ] {
            let c = LinRgb::new(r, g, b);
            assert_eq!(q.encode(c), c.to_srgb(), "{c:?}");
        }
    }
}
