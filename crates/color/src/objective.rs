//! Runtime-selectable optimization objectives: a color-difference metric
//! paired with the color space it operates in.
//!
//! [`DeltaE`] answers "how far apart are two colors"; [`Objective`] is the
//! campaign-facing axis built on top of it: every objective knows its
//! metric, its [`ColorSpace`], a stable config name, and the scale of its
//! scores relative to the paper's RGB-Euclidean baseline (so solvers with
//! absolute thresholds can renormalize).

use crate::cam16::{cam16ucs, Jab};
use crate::deltae::{cie94_symmetric, DeltaE};
use crate::lab::Lab;
use crate::rgb::Rgb8;

/// The color space an [`Objective`] measures distances in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorSpace {
    /// 8-bit sRGB treated as a Euclidean space (the paper's Figure 4).
    Srgb,
    /// CIE L\*a\*b\* (D65).
    CieLab,
    /// CAM16-UCS (J′, a′, b′) under sRGB viewing conditions.
    Cam16Ucs,
}

impl ColorSpace {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ColorSpace::Srgb => "srgb",
            ColorSpace::CieLab => "cielab",
            ColorSpace::Cam16Ucs => "cam16ucs",
        }
    }
}

/// An optimization objective: metric × color space, with
/// `score(measured, target)` as the loss every solver minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Euclidean distance in 8-bit RGB — the paper's default.
    #[default]
    Rgb,
    /// ΔE\*ab 1976 in Lab.
    Cie76,
    /// Symmetric ΔE\*94 in Lab (geometric-mean chroma weights, see
    /// [`cie94_symmetric`]).
    Cie94,
    /// CIEDE2000 in Lab.
    Ciede2000,
    /// CAM16-UCS ΔE′ in Jab.
    Cam16Ucs,
}

/// RGB Euclidean distance between black and white: the baseline score range
/// every other objective's [`Objective::scale`] is measured against.
const RGB_BLACK_WHITE: f64 = 441.672_955_930_063_7;

impl Objective {
    /// Every objective, in config-name order.
    pub const ALL: [Objective; 5] = [
        Objective::Rgb,
        Objective::Cie76,
        Objective::Cie94,
        Objective::Ciede2000,
        Objective::Cam16Ucs,
    ];

    /// Score `measured` against `target`: 0 on an exact match, growing with
    /// perceptual mismatch. Symmetric in its arguments for every variant.
    pub fn score(self, measured: Rgb8, target: Rgb8) -> f64 {
        match self {
            Objective::Rgb => measured.distance(target),
            Objective::Cie76 => DeltaE::Cie76.between(measured, target),
            Objective::Cie94 => cie94_symmetric(Lab::from_rgb8(measured), Lab::from_rgb8(target)),
            Objective::Ciede2000 => DeltaE::Ciede2000.between(measured, target),
            Objective::Cam16Ucs => cam16ucs(measured, target),
        }
    }

    /// The color space the metric operates in.
    pub fn space(self) -> ColorSpace {
        match self {
            Objective::Rgb => ColorSpace::Srgb,
            Objective::Cie76 | Objective::Cie94 | Objective::Ciede2000 => ColorSpace::CieLab,
            Objective::Cam16Ucs => ColorSpace::Cam16Ucs,
        }
    }

    /// Short machine-readable name (used in configs and published records).
    pub fn name(self) -> &'static str {
        match self {
            Objective::Rgb => "rgb",
            Objective::Cie76 => "cie76",
            Objective::Cie94 => "cie94",
            Objective::Ciede2000 => "ciede2000",
            Objective::Cam16Ucs => "cam16ucs",
        }
    }

    /// Every valid config name, for error messages.
    pub fn valid_names() -> &'static str {
        "rgb, cie76, cie94, ciede2000, cam16ucs"
    }

    /// Parse the name produced by [`Objective::name`].
    pub fn parse(s: &str) -> Option<Objective> {
        match s {
            "rgb" => Some(Objective::Rgb),
            "cie76" => Some(Objective::Cie76),
            "cie94" => Some(Objective::Cie94),
            "ciede2000" => Some(Objective::Ciede2000),
            "cam16ucs" => Some(Objective::Cam16Ucs),
            _ => None,
        }
    }

    /// Typical score magnitude relative to RGB Euclidean, measured as the
    /// black↔white score over the RGB black↔white distance. Exactly 1 for
    /// [`Objective::Rgb`]; solvers with thresholds calibrated in RGB units
    /// (e.g. an annealer's initial temperature) multiply them by this.
    pub fn scale(self) -> f64 {
        match self {
            Objective::Rgb => 1.0,
            other => other.score(Rgb8::new(0, 0, 0), Rgb8::new(255, 255, 255)) / RGB_BLACK_WHITE,
        }
    }

    /// The grading [`DeltaE`] metric closest to this objective
    /// ([`Objective::Cam16Ucs`] has none). Note [`Objective::Cie94`] scores
    /// with the *symmetric* ΔE\*94 variant, while [`DeltaE::Cie94`] is the
    /// classic reference-based formula.
    pub fn delta_e(self) -> Option<DeltaE> {
        match self {
            Objective::Rgb => Some(DeltaE::RgbEuclidean),
            Objective::Cie76 => Some(DeltaE::Cie76),
            Objective::Cie94 => Some(DeltaE::Cie94),
            Objective::Ciede2000 => Some(DeltaE::Ciede2000),
            Objective::Cam16Ucs => None,
        }
    }
}

impl From<DeltaE> for Objective {
    fn from(m: DeltaE) -> Objective {
        match m {
            DeltaE::RgbEuclidean => Objective::Rgb,
            DeltaE::Cie76 => Objective::Cie76,
            DeltaE::Cie94 => Objective::Cie94,
            DeltaE::Ciede2000 => Objective::Ciede2000,
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The measured color expressed in an objective's own space, for telemetry
/// and debugging (the score itself never round-trips through this).
pub fn in_space(space: ColorSpace, c: Rgb8) -> [f64; 3] {
    match space {
        ColorSpace::Srgb => {
            let [r, g, b] = c.channels();
            [r as f64, g as f64, b as f64]
        }
        ColorSpace::CieLab => {
            let lab = crate::lab::Lab::from_rgb8(c);
            [lab.l, lab.a, lab.b]
        }
        ColorSpace::Cam16Ucs => {
            let jab = Jab::from_rgb8(c);
            [jab.j, jab.a, jab.b]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_objective_is_exactly_the_paper_score() {
        let a = Rgb8::new(120, 120, 120);
        let b = Rgb8::new(123, 116, 120);
        assert_eq!(Objective::Rgb.score(a, b), a.distance(b));
        assert_eq!(Objective::Rgb.scale(), 1.0);
    }

    #[test]
    fn every_objective_is_zero_on_identity_and_symmetric() {
        let a = Rgb8::new(200, 50, 120);
        let b = Rgb8::new(30, 120, 200);
        for obj in Objective::ALL {
            assert_eq!(obj.score(a, a), 0.0, "{obj} not zero at zero");
            assert_eq!(obj.score(b, b), 0.0, "{obj} not zero at zero");
            assert_eq!(obj.score(a, b), obj.score(b, a), "{obj} not symmetric");
            assert!(obj.score(a, b) > 0.0, "{obj} not positive on distinct colors");
        }
    }

    #[test]
    fn names_roundtrip() {
        for obj in Objective::ALL {
            assert_eq!(Objective::parse(obj.name()), Some(obj));
            assert!(Objective::valid_names().contains(obj.name()));
        }
        assert_eq!(Objective::parse("vibes"), None);
    }

    #[test]
    fn scales_are_sane() {
        // Lab-family and UCS metrics run on a ~100-unit lightness axis, so
        // their black↔white scores sit around a quarter of RGB's 441.67.
        for obj in [Objective::Cie76, Objective::Cie94, Objective::Ciede2000, Objective::Cam16Ucs] {
            let s = obj.scale();
            assert!(s > 0.1 && s < 0.5, "{obj} scale = {s}");
        }
    }

    #[test]
    fn spaces_match_metrics() {
        assert_eq!(Objective::Rgb.space(), ColorSpace::Srgb);
        assert_eq!(Objective::Ciede2000.space(), ColorSpace::CieLab);
        assert_eq!(Objective::Cam16Ucs.space(), ColorSpace::Cam16Ucs);
        assert_eq!(ColorSpace::Cam16Ucs.name(), "cam16ucs");
    }

    #[test]
    fn delta_e_conversion_is_consistent() {
        for m in [DeltaE::RgbEuclidean, DeltaE::Cie76, DeltaE::Cie94, DeltaE::Ciede2000] {
            let obj = Objective::from(m);
            assert_eq!(obj.delta_e(), Some(m));
            assert_eq!(obj.name(), m.name());
        }
        assert_eq!(Objective::Cam16Ucs.delta_e(), None);
    }

    #[test]
    fn in_space_matches_conversions() {
        let c = Rgb8::new(30, 120, 200);
        assert_eq!(in_space(ColorSpace::Srgb, c), [30.0, 120.0, 200.0]);
        let lab = crate::lab::Lab::from_rgb8(c);
        assert_eq!(in_space(ColorSpace::CieLab, c), [lab.l, lab.a, lab.b]);
        let jab = Jab::from_rgb8(c);
        assert_eq!(in_space(ColorSpace::Cam16Ucs, c), [jab.j, jab.a, jab.b]);
    }
}
