//! Property tests for the color-science crate.

use proptest::prelude::*;
use sdl_color::{
    cie76, ciede2000, BeerLambert, DeltaE, DyeSet, Jab, Lab, LinRgb, MixModel, Objective, Recipe,
    Rgb8, Xyz,
};

fn arb_rgb8() -> impl Strategy<Value = Rgb8> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Rgb8::new(r, g, b))
}

fn arb_lab() -> impl Strategy<Value = Lab> {
    (0.0..100.0f64, -100.0..100.0f64, -100.0..100.0f64).prop_map(|(l, a, b)| Lab::new(l, a, b))
}

proptest! {
    /// sRGB → linear → sRGB is the identity on all 8-bit colors.
    #[test]
    fn srgb_roundtrip(c in arb_rgb8()) {
        prop_assert_eq!(c.to_linear().to_srgb(), c);
    }

    /// RGB → XYZ → Lab → XYZ → RGB returns to the same 8-bit color.
    #[test]
    fn full_pipeline_roundtrip(c in arb_rgb8()) {
        let lab = Lab::from_xyz(Xyz::from_linear(c.to_linear()));
        let back = lab.to_xyz().to_linear().to_srgb();
        prop_assert_eq!(back, c);
    }

    /// RGB, CIE76 and CIEDE2000 are symmetric; CIE94 is *reference-based*
    /// (weights depend on the first color's chroma) and only needs to be
    /// finite and non-negative.
    #[test]
    fn metrics_symmetric(a in arb_rgb8(), b in arb_rgb8()) {
        for m in [DeltaE::RgbEuclidean, DeltaE::Cie76, DeltaE::Ciede2000] {
            let ab = m.between(a, b);
            let ba = m.between(b, a);
            prop_assert!((ab - ba).abs() < 1e-9, "{} not symmetric: {} vs {}", m.name(), ab, ba);
            prop_assert!(ab >= 0.0);
        }
        let d94 = DeltaE::Cie94.between(a, b);
        prop_assert!(d94.is_finite() && d94 >= 0.0);
    }

    /// Every campaign objective is bit-exactly symmetric, zero at zero and
    /// non-negative over the full 8-bit cube (including the symmetric CIE94
    /// variant and CAM16-UCS).
    #[test]
    fn objectives_symmetric_and_zero_at_zero(a in arb_rgb8(), b in arb_rgb8()) {
        for obj in Objective::ALL {
            prop_assert_eq!(obj.score(a, a), 0.0, "{} not zero at zero", obj.name());
            let ab = obj.score(a, b);
            prop_assert_eq!(ab, obj.score(b, a), "{} not symmetric", obj.name());
            prop_assert!(ab.is_finite() && ab >= 0.0, "{} ill-behaved: {}", obj.name(), ab);
        }
    }

    /// The CAM16-UCS pipeline is finite over the whole 8-bit cube and its
    /// lightness axis stays inside [0, 100] for in-gamut colors.
    #[test]
    fn jab_well_behaved(c in arb_rgb8()) {
        let jab = Jab::from_rgb8(c);
        prop_assert!(jab.j.is_finite() && jab.a.is_finite() && jab.b.is_finite());
        prop_assert!((-1e-9..=100.0 + 1e-9).contains(&jab.j), "J' = {}", jab.j);
    }

    /// CIE76 satisfies the triangle inequality (it is a true metric).
    #[test]
    fn cie76_triangle(a in arb_lab(), b in arb_lab(), c in arb_lab()) {
        prop_assert!(cie76(a, c) <= cie76(a, b) + cie76(b, c) + 1e-9);
    }

    /// CIEDE2000 is finite and non-negative over the realistic Lab volume.
    #[test]
    fn ciede2000_well_behaved(a in arb_lab(), b in arb_lab()) {
        let d = ciede2000(a, b);
        prop_assert!(d.is_finite());
        prop_assert!(d >= 0.0);
    }

    /// Adding dye volume never makes any channel brighter (Beer–Lambert is
    /// channel-wise monotone decreasing in every volume).
    #[test]
    fn beer_lambert_monotone(
        base in proptest::collection::vec(0.0..30.0f64, 4),
        extra in 0.1..10.0f64,
        which in 0usize..4,
    ) {
        let set = DyeSet::cmyk();
        let m = BeerLambert::default();
        let r1 = Recipe::new(base.clone()).unwrap();
        let mut more = base;
        more[which] += extra;
        let r2 = Recipe::new(more).unwrap();
        let c1 = m.well_color(&set, &r1);
        let c2 = m.well_color(&set, &r2);
        prop_assert!(c2.r <= c1.r + 1e-12);
        prop_assert!(c2.g <= c1.g + 1e-12);
        prop_assert!(c2.b <= c1.b + 1e-12);
    }

    /// All mixing models stay inside the unit cube for in-box recipes.
    #[test]
    fn mix_models_stay_in_gamut(ratios in proptest::collection::vec(0.0..=1.0f64, 4)) {
        let set = DyeSet::cmyk();
        let recipe = Recipe::from_ratios(&ratios, &set).unwrap();
        for kind in [sdl_color::MixKind::BeerLambert, sdl_color::MixKind::KubelkaMunk, sdl_color::MixKind::Linear] {
            let c = kind.model().well_color(&set, &recipe);
            for ch in c.channels() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&ch), "{} out of gamut: {:?}", kind.name(), c);
            }
        }
    }

    /// Ratio → recipe → ratio roundtrips within float tolerance.
    #[test]
    fn recipe_ratio_roundtrip(ratios in proptest::collection::vec(0.0..=1.0f64, 4)) {
        let set = DyeSet::cmyk();
        let recipe = Recipe::from_ratios(&ratios, &set).unwrap();
        let back = recipe.ratios(&set);
        for (orig, b) in ratios.iter().zip(&back) {
            prop_assert!((orig - b).abs() < 1e-12);
        }
    }

    /// Linear-light filter of white by transmittance t equals t.
    #[test]
    fn white_filter_identity(r in 0.0..=1.0f64, g in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let t = LinRgb::new(r, g, b);
        let f = LinRgb::WHITE.filter(t);
        prop_assert_eq!(f, t);
    }
}
