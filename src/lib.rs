//! `sdl-lab` — a Rust reproduction of *"Exploring Benchmarks for Self-Driving
//! Labs using Color Matching"* (Ginsburg et al., SC-W/XLOOP 2023).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`desim`] — deterministic discrete-event simulation kernel;
//! * [`color`] — color science: sRGB/XYZ/Lab, ΔE metrics, dye mixing models;
//! * [`conf`] — declarative configuration substrate (YAML subset + JSON);
//! * [`vision`] — synthetic plate imaging and the detection pipeline
//!   (ArUco markers, Hough circles, grid alignment, color extraction);
//! * [`instruments`] — simulated workcell modules: `sciclops`, `pf400`,
//!   `ot2`, `barty`, `camera`, plus microplate labware;
//! * [`wei`] — the workflow-execution framework (workcells, workflows,
//!   dispatch, run logs, command accounting);
//! * [`solvers`] — decision procedures: the paper's evolutionary solver, a
//!   Gaussian-process Bayesian optimizer, baselines, and the open
//!   [`SolverRegistry`](solvers::SolverRegistry) for downstream additions;
//! * [`datapub`] — the publication substrate (Globus-flow-like pipeline and
//!   an ACDC-style searchable portal);
//! * [`portal_server`] — the HTTP serving layer over the portal
//!   (`sdl-lab serve`), including the `POST /v1/*` batch-execution API
//!   that turns any served portal into a lab worker;
//! * [`core`] — the ask/tell [`Experiment`](core::Experiment) session, the
//!   pluggable [`LabBackend`](core::LabBackend) executors (sim · remote
//!   HTTP · replay), the campaign engine, and the color-picker application.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory (crate by crate, including the backend layer).

pub use sdl_color as color;
pub use sdl_conf as conf;
pub use sdl_core as core;
pub use sdl_datapub as datapub;
pub use sdl_desim as desim;
pub use sdl_instruments as instruments;
pub use sdl_portal_server as portal_server;
pub use sdl_solvers as solvers;
pub use sdl_vision as vision;
pub use sdl_wei as wei;

/// Commonly used items for writing applications against the benchmark.
pub mod prelude {
    pub use sdl_color::{DeltaE, Rgb8};
    pub use sdl_core::{
        AppConfig, BackendCaps, BackendSpec, Batch, BatchResult, CampaignConfig, CampaignRunner,
        CampaignScheduler, ColorPickerApp, Experiment, ExperimentOutcome, LabBackend,
        RemoteBackend, ReplayBackend, RetryPolicy, ScenarioSpec, SimBackend,
    };
    pub use sdl_desim::{RngHub, SimDuration, SimTime};
    pub use sdl_solvers::{register_solver, ColorSolver, SolverKind, SolverRegistry};
}
