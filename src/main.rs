//! `sdl-lab` — command-line interface to the color-matching benchmark.
//!
//! ```text
//! sdl-lab run [--samples N] [--batch B] [--solver NAME] [--seed S]
//!             [--backend sim|remote:<url>|replay:<path>]
//!             [--fidelity full|fast|lowres]
//!             [--target R,G,B] [--config FILE] [--runlog-dir DIR]
//!             [--export-portal FILE] [--flat-field]
//! sdl-lab sweep --batches 1,2,4,8 [--samples N] [--threads T]
//! sdl-lab campaign --config FILE [--threads T] [--workers url1,url2,...]
//!                  [--shard N] [--export-portal FILE] [--event-log FILE]
//!                  [--chaos SPEC] [--failure-budget N]
//! sdl-lab campaign --resume LOG [--threads T] [--export-portal FILE]
//! sdl-lab stress [--samples N] [--batch B] [--seed S] [--seeds K]
//!                [--solvers LIST] [--objectives LIST] [--kinds LIST]
//!                [--threads T] [--workers url1,url2,...] [--shard N]
//!                [--event-log FILE] [--export-portal FILE] [--fingerprint]
//! sdl-lab portal --import FILE [--experiment ID] [--run N]
//! sdl-lab serve [--import FILE | --campaign FILE] [--addr HOST:PORT]
//!               [--threads N] [--campaign-threads T] [--blob-dir DIR]
//!               [--event-log FILE] [--chaos SPEC] [--max-conns N]
//!               [--quota RATE[:BURST]] [--max-inflight N]
//!               [--blob-mem-cap BYTES]
//! sdl-lab watch URL [--once] [--interval-ms N]
//! sdl-lab workcell
//! sdl-lab help
//! ```

use sdl_lab::color::{Objective, Rgb8};
use sdl_lab::core::{
    batch_sweep, AppConfig, BackendSpec, CampaignConfig, CampaignReport, CampaignRunner,
    CampaignScheduler, ChaosPolicy, ColorPickerApp, EventLog, EventRecord, Experiment, Leaderboard,
    ProgressModel, StressKind, StressSuite,
};
use sdl_lab::datapub::AcdcPortal;
use sdl_lab::solvers::SolverKind;
use sdl_lab::vision::Fidelity;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let result = match command {
        "run" => cmd_run(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "stress" => cmd_stress(&args[1..]),
        "portal" => cmd_portal(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "workcell" => {
            println!("{}", sdl_lab::wei::RPL_WORKCELL_YAML);
            match sdl_lab::wei::WorkcellConfig::from_yaml(sdl_lab::wei::RPL_WORKCELL_YAML) {
                Ok(cfg) => println!("{}", sdl_lab::wei::workcell_diagram(&cfg)),
                Err(e) => eprintln!("diagram unavailable: {e}"),
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'sdl-lab help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "sdl-lab — self-driving-lab color-matching benchmark (simulated RPL workcell)

commands:
  run        run one closed-loop experiment and print metrics + portal summary
  sweep      run a batch-size sweep (Figure 4 style) through the campaign engine
  campaign   run a declarative scenario matrix (solvers x seeds x batches x ...)
  stress     run the built-in ColorBench-style stress suite (objectives x
             drift/multi-target/moving-target conditions x solvers x seeds)
             and print a per-solver leaderboard
  portal     inspect an exported portal JSON-lines file
  serve      serve the ACDC portal over HTTP (saved export or live campaign)
  watch      live terminal dashboard for a serving campaign (reads /events)
  workcell   print the default workcell YAML
  help       this text

run options:
  --samples N         sample budget (default 128)
  --batch B           wells per iteration (default 1)
  --solver NAME       any registered solver (built-ins:
                      genetic|bayesian|annealing|random|grid|analytic)
  --backend SPEC      lab executor: sim (default), remote:<url> (a
                      'sdl-lab serve' worker), or replay:<path> (re-drive a
                      recorded portal export offline)
  --seed S            master seed (default 42)
  --target R,G,B      target color (default 120,120,120)
  --config FILE       load a YAML application config (other flags override)
  --runlog-dir DIR    write per-workflow run logs (text files)
  --export-portal F   write all published records as JSON lines
  --export-html F     write a static HTML portal view (with plate images)
  --blob-dir DIR      spill plate-image blobs to DIR (servable later via
                      'serve --blob-dir DIR')
  --flat-field        enable the detector's flat-field correction
  --fidelity NAME     camera fidelity profile: full (frozen reference
                      renderer), fast (counter-based, default), lowres
                      (counter-based at 320x240)

sweep options:
  --batches LIST      comma-separated batch sizes (default 1,2,4,8,16,32,64)
  --samples N         sample budget per experiment (default 128)
  --threads T         worker threads (default: one per core)

campaign options:
  --config FILE       scenario-matrix YAML (solvers/seeds/batches/targets/
                      mix_models/fidelities/fault_rates/n_ot2 axes over a
                      base config)
  --threads T         worker threads (overrides the config's 'threads')
  --workers LIST      comma-separated worker addresses (host:port); fans the
                      campaign across remote 'sdl-lab serve' workers with
                      work stealing (overrides the config's 'workers:')
  --shard N           scheduler shard size, scenarios per deal unit
                      (overrides the config's 'shard:'; default automatic)
  --export-portal F   write every streamed scenario record as JSON lines
  --fingerprint       print the campaign's determinism fingerprint
  --event-log FILE    append every campaign event (claims, batches, samples,
                      completions) to FILE as durable, checksummed JSON lines
  --chaos SPEC        (worker pools only) inject deterministic transport
                      faults into the driver-worker wire, e.g.
                      'seed=7,connect=0.05,disconnect=0.05,replay=0.05';
                      keys: seed, connect, disconnect, timeout, http500,
                      replay (probabilities in [0,1]); retry-safe faults
                      leave the fingerprint bit-identical
  --failure-budget N  (worker pools only) quarantine a scenario as a
                      deterministic failure after N failed delivery attempts
                      instead of requeueing forever (default 10; 0 = never)
  --resume LOG        recover LOG from a crashed campaign and finish it:
                      completed scenarios replay bit-exactly from the log,
                      interrupted ones re-drive; the merged report equals an
                      uninterrupted run's (--config is not needed — the
                      scenario matrix is recovered from the log itself)

stress options (plus --samples/--batch/--seed/--config from 'run'):
  --solvers LIST      comma-separated solvers to rank (default
                      genetic,bayesian,random,annealing)
  --objectives LIST   comma-separated objectives (rgb|cie76|cie94|ciede2000|
                      cam16ucs; default rgb,ciede2000,cam16ucs)
  --kinds LIST        comma-separated stress conditions (baseline|wb-drift|
                      gain-drift|multi-target|moving-target; default all)
  --seeds K           replications: master seeds seed..seed+K-1 (default 2)
  --threads T         worker threads (default: one per core)
  --workers LIST      fan the suite across remote 'sdl-lab serve' workers
  --shard N           scheduler shard size (worker pools; default automatic)
  --event-log FILE    append campaign events to FILE (finish a crashed suite
                      with 'sdl-lab campaign --resume FILE')
  --export-portal F   write scenario records + the leaderboard as JSON lines
  --fingerprint       print the suite's determinism fingerprint

portal options:
  --import FILE       JSON-lines file written by --export-portal
  --experiment ID     experiment to summarize (default: first found)
  --run N             also print the detail view of run N

serve options (no flags = empty portal in lab-worker mode):
  --import FILE       serve a saved JSON-lines portal export
  --campaign FILE     run a campaign (scenario-matrix YAML) on background
                      workers; records stream into the live server as
                      scenario prefixes complete
  --addr HOST:PORT    bind address (default 127.0.0.1:8323; port 0 = ephemeral)
  --threads N         HTTP worker threads (default 8; thread-per-connection,
                      so use >= the number of concurrent clients)
  --campaign-threads T campaign worker threads (default: one per core)
  --blob-dir DIR      blob spill directory; with --import, previously
                      spilled plate images are reloaded and served
  --event-log FILE    with --campaign: also persist the event stream to FILE
                      (without this flag a campaign still streams /events
                      from an in-memory log; FILE makes it crash-resumable)
  --chaos SPEC        misbehave as a lab worker, deterministically, e.g.
                      'seed=3,stall=0.1,error=0.05,kill=0.01'; keys: seed,
                      stall, error, kill, shed, stall_ms ('/healthz' is never
                      chaos'd, so schedulers can still probe and readmit)
  --max-conns N       live-connection cap; connections over the cap are
                      answered 503 + Retry-After at accept, never queued
                      (default 256; 0 = unlimited)
  --quota RATE[:BURST] per-tenant token-bucket quota on the /v1 batch API
                      (tenant = session id); over budget answers 429 +
                      Retry-After, e.g. '50' or '100:200' (RATE tokens/s,
                      BURST bucket size, default BURST = 2*RATE)
  --max-inflight N    cap concurrently executing /v1/batch requests; over
                      the cap answers 503 + Retry-After (default unlimited)
  --blob-mem-cap B    in-memory blob ceiling in bytes ('64k'/'16m'/'1g'
                      suffixes ok); over the cap the least-recently-used
                      blobs drop to the --blob-dir spill files and reload
                      hash-verified on demand (needs --blob-dir)
  (SIGTERM drains gracefully: new sessions are refused 503, in-flight
  batches finish, the event log is flushed, then the process exits 0)

watch options (URL is a 'sdl-lab serve' address, e.g. http://127.0.0.1:8323):
  --once              render the current campaign state once and exit
  --interval-ms N     minimum redraw interval (default 500)
  (reconnects with capped exponential backoff; exits with an error after
  6 consecutive failed polls, so a dead server never spins the terminal)

serve endpoints:
  /records            JSON lines; dotted-path filters + limit/offset, e.g.
                      /records?kind=sample&run=12&limit=50&offset=0
  /events             campaign event log, JSON lines; ?from=SEQ&limit=N
                      &timeout_ms=T long-polls (X-Next-Seq header carries
                      the cursor); /events/stream is the same as SSE
  /summary            experiment summary HTML   (?experiment=ID)
  /runs/<run>         run detail HTML           (?experiment=ID)
  /blobs/<ref>        raw plate images
  /healthz            liveness JSON
  /metrics            Prometheus text (+ sdl_lab_campaign_* gauges when a
                      campaign event log is attached)
  /v1/experiments, /v1/batch, /v1/close   POST: the batch-execution API
                      (drive this server as a lab worker from another
                      process via 'run --backend remote:<addr>')

example:
  sdl-lab run --samples 64 --export-portal out.jsonl
  sdl-lab serve --import out.jsonl --addr 127.0.0.1:8323
  curl http://127.0.0.1:8323/records?kind=sample&limit=5

remote-worker example:
  sdl-lab serve --addr 127.0.0.1:8323 &          # lab worker
  sdl-lab run --samples 16 --backend remote:127.0.0.1:8323
  sdl-lab run --samples 16 --export-portal rec.jsonl
  sdl-lab run --samples 16 --backend replay:rec.jsonl   # offline re-drive

worker-pool example (distributed campaign, bit-identical to single-process):
  sdl-lab serve --addr 127.0.0.1:8331 &          # worker 1
  sdl-lab serve --addr 127.0.0.1:8332 &          # worker 2
  sdl-lab campaign --config c.yaml --workers 127.0.0.1:8331,127.0.0.1:8332

observability example (live dashboard + crash resume):
  sdl-lab serve --campaign c.yaml --event-log c.events &
  sdl-lab watch http://127.0.0.1:8323             # live terminal dashboard
  kill -9 %1                                      # simulate a crash...
  sdl-lab campaign --resume c.events --fingerprint   # ...and finish the rest"
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix (powers of 1024),
/// e.g. `65536`, `64k`, `16m`.
fn parse_bytes(s: &str) -> Result<usize, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1024),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1024 * 1024),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    let n: usize = digits.trim().parse().map_err(|_| "expected BYTES[k|m|g]".to_string())?;
    n.checked_mul(mult).ok_or_else(|| "byte count overflows".to_string())
}

fn build_config(args: &[String]) -> Result<AppConfig, String> {
    let mut config = match flag_value(args, "--config") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            AppConfig::from_yaml(&text).map_err(|e| e.to_string())?
        }
        None => AppConfig::default(),
    };
    if let Some(v) = flag_value(args, "--samples") {
        config.sample_budget = v.parse().map_err(|_| format!("bad --samples '{v}'"))?;
    }
    if let Some(v) = flag_value(args, "--batch") {
        config.batch = v.parse().map_err(|_| format!("bad --batch '{v}'"))?;
    }
    if let Some(v) = flag_value(args, "--solver") {
        match SolverKind::parse(v) {
            Some(kind) => config.solver = kind,
            None if sdl_lab::solvers::solver_registered(v) => {
                config.custom_solver = Some(v.to_string());
            }
            None => {
                return Err(format!(
                    "unknown solver '{v}' (registered solvers: {})",
                    sdl_lab::solvers::registered_names()
                ))
            }
        }
    }
    if let Some(v) = flag_value(args, "--seed") {
        config.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
    }
    if let Some(v) = flag_value(args, "--target") {
        let parts: Vec<u8> = v
            .split(',')
            .map(|p| p.trim().parse::<u8>())
            .collect::<Result<_, _>>()
            .map_err(|_| format!("bad --target '{v}' (want R,G,B)"))?;
        if parts.len() != 3 {
            return Err(format!("bad --target '{v}' (want three components)"));
        }
        config.target = Rgb8::new(parts[0], parts[1], parts[2]);
    }
    if flag_present(args, "--flat-field") {
        config.flat_field = true;
    }
    if let Some(v) = flag_value(args, "--fidelity") {
        config.fidelity = Fidelity::parse(v).ok_or_else(|| {
            format!("unknown fidelity '{v}' (valid: {})", Fidelity::valid_names())
        })?;
    }
    Ok(config)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let config = build_config(args)?;
    let backend = match flag_value(args, "--backend") {
        Some(v) => BackendSpec::parse(v).map_err(|e| e.to_string())?,
        None => BackendSpec::Sim,
    };
    let runlog_dir = flag_value(args, "--runlog-dir").map(PathBuf::from);
    if runlog_dir.is_some() && backend != BackendSpec::Sim {
        return Err("--runlog-dir needs the sim backend (run logs live lab-side)".into());
    }
    let export = flag_value(args, "--export-portal").map(PathBuf::from);
    let export_html = flag_value(args, "--export-html").map(PathBuf::from);

    eprintln!(
        "running {} samples, batch {}, solver {}, seed {}, backend {backend}...",
        config.sample_budget,
        config.batch,
        config.solver_label(),
        config.seed
    );
    // The sim path keeps the full application (engine access for run logs);
    // other executors drive a bare ask/tell session on the chosen backend.
    let (outcome, app) = match backend {
        BackendSpec::Sim => {
            let mut app = ColorPickerApp::new(config).map_err(|e| e.to_string())?;
            let outcome = app.run().map_err(|e| e.to_string())?;
            (outcome, Some(app))
        }
        spec => {
            let mut session = Experiment::new(config.clone()).map_err(|e| e.to_string())?;
            let mut lab = spec.build(&config).map_err(|e| e.to_string())?;
            let outcome = session.run_on(lab.as_mut()).map_err(|e| e.to_string())?;
            (outcome, None)
        }
    };

    println!("experiment:  {}", outcome.experiment_id);
    println!("termination: {}", outcome.termination);
    println!("duration:    {} (virtual)", outcome.duration);
    println!("best score:  {:.2} at {:?}", outcome.best_score, outcome.best_ratios);
    println!();
    println!("{}", outcome.metrics.render_table1());
    println!("{}", outcome.portal.summary_view(&outcome.experiment_id));

    if let (Some(dir), Some(app)) = (runlog_dir, &app) {
        let n = app.engine().export_runlogs(&dir).map_err(|e| e.to_string())?;
        println!("wrote {n} run logs to {}", dir.display());
    }
    if let Some(path) = export {
        let n = outcome.portal.export_jsonl(&path).map_err(|e| e.to_string())?;
        println!("exported {n} portal records to {}", path.display());
    }
    if let Some(path) = export_html {
        outcome
            .portal
            .export_html(&path, &outcome.experiment_id, Some(&outcome.store))
            .map_err(|e| e.to_string())?;
        println!("wrote HTML portal view to {}", path.display());
    }
    if let Some(dir) = flag_value(args, "--blob-dir") {
        let spill = sdl_lab::datapub::BlobStore::with_spill_dir(dir);
        outcome.store.merge_into(&spill);
        println!("spilled {} plate-image blobs to {dir}", spill.len());
    }
    Ok(())
}

fn runner_for(args: &[String]) -> Result<CampaignRunner, String> {
    let mut runner = CampaignRunner::new();
    if let Some(v) = flag_value(args, "--threads") {
        let t: usize = v.parse().map_err(|_| format!("bad --threads '{v}'"))?;
        runner = runner.threads(t);
    }
    Ok(runner)
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let mut base = build_config(args)?;
    base.publish_images = false;
    let batches: Vec<u32> = match flag_value(args, "--batches") {
        Some(v) => v
            .split(',')
            .map(|p| p.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|_| format!("bad --batches '{v}'"))?,
        None => vec![1, 2, 4, 8, 16, 32, 64],
    };
    eprintln!("running {} experiments of {} samples...", batches.len(), base.sample_budget);
    let report = runner_for(args)?.run(batch_sweep(&base, &batches));
    println!("{:<6} {:>12} {:>10} {:>8}", "batch", "duration", "best", "plates");
    for result in &report.results {
        let out = result.outcome.as_ref().map_err(|e| format!("{}: {e}", result.label()))?;
        println!(
            "{:<6} {:>12} {:>10.2} {:>8}",
            result.label(),
            out.duration().to_string(),
            out.best_score(),
            out.plates_used()
        );
    }
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    // Resume mode: everything — the scenario matrix included — is
    // recovered from the event log, so --config is not accepted.
    if let Some(log_path) = flag_value(args, "--resume") {
        if flag_value(args, "--config").is_some() || flag_value(args, "--workers").is_some() {
            return Err(
                "--resume recovers the scenario matrix from the log; drop --config/--workers"
                    .into(),
            );
        }
        let runner = runner_for(args)?.progress(true);
        eprintln!("resuming campaign from {log_path}...");
        let (report, stats) = runner.resume(log_path).map_err(|e| e.to_string())?;
        if let Some(torn) = &stats.recovery.torn {
            eprintln!("recovery: dropped a torn tail ({torn})");
        }
        eprintln!(
            "recovered {} events ({} bytes): {} scenario(s) replayed from the log, {} re-driven",
            stats.recovery.events, stats.recovery.valid_bytes, stats.replayed, stats.redriven
        );
        println!("# campaign (resumed from {log_path})");
        return finish_campaign(args, &report);
    }

    let path =
        flag_value(args, "--config").ok_or("campaign needs --config FILE (or --resume LOG)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let config = CampaignConfig::from_yaml(&text).map_err(|e| e.to_string())?;
    let scenarios = config.scenarios();
    if scenarios.is_empty() {
        return Err("campaign expands to zero scenarios".into());
    }
    let event_log = match flag_value(args, "--event-log") {
        Some(p) => {
            let log = EventLog::create(p).map_err(|e| e.to_string())?;
            eprintln!("appending campaign events to {p}");
            Some(std::sync::Arc::new(log))
        }
        None => None,
    };

    // A worker pool (from --workers or the config's `workers:` key) selects
    // the distributed scheduler; otherwise the thread-pool runner.
    let workers: Vec<String> = match flag_value(args, "--workers") {
        Some(list) => {
            list.split(',').map(str::trim).filter(|w| !w.is_empty()).map(str::to_string).collect()
        }
        None => config.workers.clone(),
    };
    let chaos = match flag_value(args, "--chaos") {
        Some(spec) => Some(ChaosPolicy::parse(spec).map_err(|e| format!("bad --chaos: {e}"))?),
        None => None,
    };
    let failure_budget: Option<u32> = match flag_value(args, "--failure-budget") {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --failure-budget '{v}'"))?),
        None => None,
    };
    if workers.is_empty() && (chaos.is_some() || failure_budget.is_some()) {
        return Err(
            "--chaos/--failure-budget act on the driver-worker wire; they need a worker pool \
             (--workers or the config's 'workers:')"
                .into(),
        );
    }
    let report = if workers.is_empty() {
        let mut runner = runner_for(args)?.progress(true).name(&config.name);
        if let Some(log) = event_log {
            runner = runner.with_events(log);
        }
        if flag_value(args, "--threads").is_none() {
            if let Some(t) = config.threads {
                runner = runner.threads(t);
            }
        }
        eprintln!(
            "campaign '{}': {} scenarios on {} threads...",
            config.name,
            scenarios.len(),
            runner.worker_threads()
        );
        runner.run(scenarios)
    } else {
        let mut scheduler = CampaignScheduler::new(workers).progress(true).name(&config.name);
        if let Some(log) = event_log {
            scheduler = scheduler.with_events(log);
        }
        if let Some(policy) = chaos {
            scheduler = scheduler.chaos(policy);
        }
        if let Some(budget) = failure_budget {
            scheduler = scheduler.failure_budget(budget);
        }
        let shard = match flag_value(args, "--shard") {
            Some(v) => {
                let s: usize = v.parse().map_err(|_| format!("bad --shard '{v}'"))?;
                Some(s.max(1))
            }
            None => config.shard,
        };
        if let Some(s) = shard {
            scheduler = scheduler.shard_size(s);
        }
        eprintln!(
            "campaign '{}': {} scenarios across {} workers...",
            config.name,
            scenarios.len(),
            scheduler.pool().len()
        );
        let (report, sched) = scheduler.run(scenarios);
        for line in sched.summary_lines() {
            eprintln!("{line}");
        }
        report
    };
    println!("# campaign '{}'", config.name);
    finish_campaign(args, &report)
}

/// `sdl-lab stress` — expand the built-in stress suite (objectives ×
/// adversarial conditions × solvers × seeds) through the campaign engine
/// and fold the report into a per-solver leaderboard.
fn cmd_stress(args: &[String]) -> Result<(), String> {
    let base = build_config(args)?;
    let base_seed = base.seed;
    let mut suite = StressSuite::new(base);
    if let Some(list) = flag_value(args, "--solvers") {
        suite.solvers = list
            .split(',')
            .map(|s| {
                SolverKind::parse(s).ok_or_else(|| {
                    format!("unknown solver '{}' (valid: {})", s.trim(), SolverKind::valid_names())
                })
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(list) = flag_value(args, "--objectives") {
        suite.objectives = list
            .split(',')
            .map(|s| {
                Objective::parse(s.trim()).ok_or_else(|| {
                    format!(
                        "unknown objective '{}' (valid: {})",
                        s.trim(),
                        Objective::valid_names()
                    )
                })
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(list) = flag_value(args, "--kinds") {
        suite.kinds = list
            .split(',')
            .map(|s| {
                StressKind::parse(s).ok_or_else(|| {
                    format!(
                        "unknown stress kind '{}' (valid: {})",
                        s.trim(),
                        StressKind::valid_names()
                    )
                })
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = flag_value(args, "--seeds") {
        let k: u64 = v.parse().map_err(|_| format!("bad --seeds '{v}'"))?;
        if k == 0 {
            return Err("--seeds needs at least one replication".into());
        }
        suite.seeds = (0..k).map(|i| base_seed.wrapping_add(i)).collect();
    }
    if suite.is_empty() {
        return Err("stress suite expands to zero scenarios".into());
    }
    let scenarios = suite.scenarios();

    let event_log = match flag_value(args, "--event-log") {
        Some(p) => {
            let log = EventLog::create(p).map_err(|e| e.to_string())?;
            eprintln!("appending campaign events to {p}");
            Some(std::sync::Arc::new(log))
        }
        None => None,
    };
    let workers: Vec<String> = match flag_value(args, "--workers") {
        Some(list) => {
            list.split(',').map(str::trim).filter(|w| !w.is_empty()).map(str::to_string).collect()
        }
        None => Vec::new(),
    };
    let report = if workers.is_empty() {
        let mut runner = runner_for(args)?.progress(true).name("stress");
        if let Some(log) = event_log {
            runner = runner.with_events(log);
        }
        eprintln!(
            "stress suite: {} scenarios ({} objectives x {} kinds x {} solvers x {} seeds) \
             on {} threads...",
            scenarios.len(),
            suite.objectives.len(),
            suite.kinds.len(),
            suite.solvers.len(),
            suite.seeds.len(),
            runner.worker_threads()
        );
        runner.run(scenarios)
    } else {
        let mut scheduler = CampaignScheduler::new(workers).progress(true).name("stress");
        if let Some(log) = event_log {
            scheduler = scheduler.with_events(log);
        }
        if let Some(v) = flag_value(args, "--shard") {
            let s: usize = v.parse().map_err(|_| format!("bad --shard '{v}'"))?;
            scheduler = scheduler.shard_size(s.max(1));
        }
        eprintln!(
            "stress suite: {} scenarios across {} workers...",
            scenarios.len(),
            scheduler.pool().len()
        );
        let (report, sched) = scheduler.run(scenarios);
        for line in sched.summary_lines() {
            eprintln!("{line}");
        }
        report
    };

    // The leaderboard goes into the portal before the export below, so
    // `--export-portal` files carry it alongside the scenario records.
    let board = Leaderboard::from_report(&report);
    board.publish(&report.portal);
    println!("# stress leaderboard");
    println!("{}", board.render_table());
    println!();
    finish_campaign(args, &report)
}

/// The shared tail of `campaign` and `campaign --resume`: summary table,
/// optional fingerprint and portal export, nonzero exit on failures.
fn finish_campaign(args: &[String], report: &CampaignReport) -> Result<(), String> {
    println!("{}", report.summary_table());
    let failed = report.results.iter().filter(|r| r.outcome.is_err()).count();
    if flag_present(args, "--fingerprint") {
        println!("fingerprint:\n{}", report.fingerprint());
    }
    if let Some(path) = flag_value(args, "--export-portal") {
        let n =
            report.portal.export_jsonl(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        println!("exported {n} portal records to {path}");
    }
    if failed > 0 {
        return Err(format!("{failed} scenario(s) failed"));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use sdl_lab::datapub::{AcdcPortal, BlobStore};
    use sdl_lab::portal_server::{spawn, LabHost, PortalServer, QuotaPolicy, ServerConfig};
    use std::sync::Arc;

    let import = flag_value(args, "--import");
    let campaign = flag_value(args, "--campaign");
    if import.is_some() && campaign.is_some() {
        return Err("serve takes at most one of --import FILE or --campaign FILE".into());
    }
    if import.is_none() && campaign.is_none() {
        eprintln!(
            "serving an empty portal (worker mode: drive it via 'sdl-lab run --backend remote:<addr>')"
        );
    }

    let portal = Arc::new(AcdcPortal::new());
    let mem_cap = match flag_value(args, "--blob-mem-cap") {
        Some(v) => Some(parse_bytes(v).map_err(|e| format!("bad --blob-mem-cap '{v}': {e}"))?),
        None => None,
    };
    let store: Arc<BlobStore> = match flag_value(args, "--blob-dir") {
        Some(dir) => {
            let mut store = BlobStore::open_spill_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
            if let Some(cap) = mem_cap {
                store = store.with_mem_cap(cap);
                eprintln!("blob memory cap: {cap} bytes (LRU eviction over the spill dir)");
            }
            Arc::new(store)
        }
        None => {
            if mem_cap.is_some() {
                eprintln!("--blob-mem-cap ignored without --blob-dir (no spill dir to evict into)");
            }
            Arc::new(BlobStore::in_memory())
        }
    };

    if let Some(path) = import {
        let n =
            portal.import_jsonl(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("loaded {n} records from {path}");
    }

    if flag_value(args, "--event-log").is_some() && campaign.is_none() {
        return Err("--event-log needs --campaign FILE (the log records campaign events)".into());
    }

    // In campaign mode the runner publishes into the same portal and blob
    // store the server reads, on a background thread: scenario records
    // appear at the endpoints while the campaign is still executing.
    let mut campaign_worker = None;
    let mut event_log = None;
    if let Some(path) = campaign {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let config = CampaignConfig::from_yaml(&text).map_err(|e| e.to_string())?;
        let scenarios = config.scenarios();
        if scenarios.is_empty() {
            return Err("campaign expands to zero scenarios".into());
        }
        // The live /events feed and dashboard always get a log; --event-log
        // additionally makes it durable (and the campaign crash-resumable).
        let log = match flag_value(args, "--event-log") {
            Some(p) => {
                eprintln!("appending campaign events to {p}");
                Arc::new(EventLog::create(p).map_err(|e| e.to_string())?)
            }
            None => Arc::new(EventLog::in_memory()),
        };
        event_log = Some(Arc::clone(&log));
        let mut runner = CampaignRunner::new()
            .with_portal(Arc::clone(&portal))
            .with_store(Arc::clone(&store))
            .with_events(log)
            .name(&config.name)
            .publish_records(true)
            .progress(true);
        match flag_value(args, "--campaign-threads") {
            Some(v) => {
                let t: usize = v.parse().map_err(|_| format!("bad --campaign-threads '{v}'"))?;
                runner = runner.threads(t);
            }
            None => {
                if let Some(t) = config.threads {
                    runner = runner.threads(t);
                }
            }
        }
        eprintln!(
            "campaign '{}': {} scenarios on {} threads (streaming into the live portal)...",
            config.name,
            scenarios.len(),
            runner.worker_threads()
        );
        campaign_worker = Some(std::thread::spawn(move || {
            let report = runner.run(scenarios);
            let failed = report.results.iter().filter(|r| r.outcome.is_err()).count();
            eprintln!(
                "campaign finished: {} scenarios, {failed} failed; portal holds {} records",
                report.len(),
                report.portal.len()
            );
        }));
    }

    let mut config = ServerConfig { addr: "127.0.0.1:8323".into(), ..ServerConfig::default() };
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(v) = flag_value(args, "--threads") {
        config.threads = v.parse().map_err(|_| format!("bad --threads '{v}'"))?;
    }
    if let Some(v) = flag_value(args, "--max-conns") {
        config.max_conns = v.parse().map_err(|_| format!("bad --max-conns '{v}'"))?;
    }

    // Every served portal also hosts the batch-execution API, so any
    // `sdl-lab serve` process doubles as a lab worker for remote sessions.
    let mut lab = LabHost::new();
    if let Some(spec) = flag_value(args, "--chaos") {
        let policy = ChaosPolicy::parse(spec).map_err(|e| format!("bad --chaos: {e}"))?;
        if !policy.is_noop() {
            eprintln!("worker chaos armed: {spec}");
        }
        lab = lab.with_chaos(policy);
    }
    if let Some(spec) = flag_value(args, "--quota") {
        let quota = QuotaPolicy::parse(spec).map_err(|e| format!("bad --quota: {e}"))?;
        eprintln!("per-tenant quota armed: {spec} (over budget answers 429 + Retry-After)");
        lab = lab.with_quota(quota);
    }
    if let Some(v) = flag_value(args, "--max-inflight") {
        let n: u64 = v.parse().map_err(|_| format!("bad --max-inflight '{v}'"))?;
        lab = lab.with_max_inflight(n);
    }
    let mut server = PortalServer::new(portal, store).with_lab(Arc::new(lab));
    if let Some(log) = event_log {
        server = server.with_events(log);
    }
    let handle = spawn(server, &config).map_err(|e| format!("bind: {e}"))?;
    // The bound address goes to stdout (and is flushed) so scripts and the
    // CI smoke test can pick up an ephemeral port.
    println!("serving on {}", handle.url());
    {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    eprintln!(
        "endpoints: /records /events /summary /runs/<run> /blobs/<ref> /healthz /metrics \
         (SIGTERM drains gracefully, Ctrl-C stops immediately)"
    );
    #[cfg(unix)]
    {
        // SIGTERM triggers a graceful drain instead of killing the process:
        // refuse new sessions, finish in-flight /v1 batches, flush the
        // event log, then exit 0 so orchestrators see a clean stop.
        term_signal::install();
        while !term_signal::received() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        eprintln!("SIGTERM: draining (refusing new sessions, finishing in-flight batches)");
        let server = Arc::clone(handle.server());
        server.begin_drain();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        if let Some(lab) = server.lab() {
            while lab.metrics().inflight() > 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
        if let Some(log) = server.events() {
            log.sync();
        }
        handle.shutdown();
        // A campaign still running its scenario matrix is not waited for:
        // its progress is already durable in the (just-synced) event log
        // and can be finished with `campaign --resume`.
        drop(campaign_worker);
        eprintln!("drained: in-flight batches finished, event log flushed");
        Ok(())
    }
    #[cfg(not(unix))]
    {
        handle.join();
        if let Some(worker) = campaign_worker {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// SIGTERM → drain flag for `serve`. `std` has no signal API and the
/// build is dependency-free, so this declares `signal(2)` directly; the
/// handler only stores into an atomic (async-signal-safe).
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }

    pub fn received() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// `sdl-lab watch URL` — a live terminal dashboard over `GET /events`.
///
/// Long-polls the server's event log, folds every event into a
/// [`ProgressModel`], and redraws the rendered dashboard in place (ANSI
/// clear + home). Exits when the campaign closes, or with an error when
/// the server stays unreachable through a capped-exponential reconnect
/// backoff; `--once` renders the current state a single time (no ANSI)
/// and exits — that form is what scripts and the CI smoke test use.
fn cmd_watch(args: &[String]) -> Result<(), String> {
    use sdl_lab::portal_server::client::HttpClient;
    use std::time::{Duration, Instant};

    let url = match args.first().map(String::as_str) {
        Some(u) if !u.starts_with("--") => u,
        _ => return Err("watch needs a server URL (e.g. http://127.0.0.1:8323)".into()),
    };
    let addr = url.strip_prefix("http://").unwrap_or(url).trim_end_matches('/').to_string();
    let once = flag_present(args, "--once");
    let interval: u64 = match flag_value(args, "--interval-ms") {
        Some(v) => v.parse().map_err(|_| format!("bad --interval-ms '{v}'"))?,
        None => 500,
    };
    let width = std::env::var("COLUMNS").ok().and_then(|c| c.parse().ok()).unwrap_or(100);

    let mut model = ProgressModel::new();
    let mut from: u64 = 1;
    let mut client: Option<HttpClient> = None;
    // Consecutive connect/poll failures. Reconnection backs off
    // exponentially (capped) and gives up once the server looks dead,
    // rather than spinning the terminal in a tight reconnect loop.
    let mut failures: u32 = 0;
    const MAX_FAILURES: u32 = 6;
    let backoff = |failures: u32| {
        Duration::from_millis((interval.clamp(100, 5_000) << (failures - 1).min(12)).min(5_000))
    };
    // Samples/s over a sliding window of recent observations.
    let mut window: std::collections::VecDeque<(Instant, u64)> = std::collections::VecDeque::new();

    loop {
        if client.is_none() {
            match HttpClient::connect(&addr) {
                Ok(c) => client = Some(c),
                Err(e) if once => return Err(format!("{addr}: {e}")),
                Err(e) => {
                    failures += 1;
                    if failures >= MAX_FAILURES {
                        return Err(format!(
                            "{addr}: unreachable after {failures} attempts (last: {e})"
                        ));
                    }
                    std::thread::sleep(backoff(failures));
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connected above");
        let timeout = if once { 0 } else { interval.clamp(100, 20_000) };
        let path = format!("/events?from={from}&limit=5000&timeout_ms={timeout}");
        let resp = match conn.get(&path) {
            Ok(r) => r,
            Err(e) if once => return Err(format!("{addr}: {e}")),
            Err(e) => {
                // Server restarting or keep-alive reaped: reconnect. The
                // cursor survives, so nothing is lost or double-counted.
                client = None;
                failures += 1;
                if failures >= MAX_FAILURES {
                    return Err(format!(
                        "{addr}: lost the server after {failures} attempts (last: {e})"
                    ));
                }
                std::thread::sleep(backoff(failures));
                continue;
            }
        };
        failures = 0;
        if resp.status == 404 {
            return Err(format!(
                "{url} has no campaign event log (start the server with \
                 'sdl-lab serve --campaign FILE')"
            ));
        }
        if resp.status != 200 {
            return Err(format!("{url}{path}: HTTP {}", resp.status));
        }
        for line in resp.text().lines() {
            match EventRecord::from_line(line) {
                Ok(rec) => model.apply(rec.seq, &rec.event),
                Err(e) => return Err(format!("corrupt event line: {e}")),
            }
        }
        from = match resp.header("x-next-seq").and_then(|v| v.parse().ok()) {
            Some(next) => next,
            None => model.seq + 1,
        };
        let closed = resp.header("x-log-closed") == Some("true");
        let drained = resp
            .header("x-event-head")
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|h| from > h);

        let now = Instant::now();
        window.push_back((now, model.samples));
        while window.len() > 2
            && now.duration_since(window.front().unwrap().0) > Duration::from_secs(10)
        {
            window.pop_front();
        }
        let rate = window.front().and_then(|(t0, s0)| {
            let dt = now.duration_since(*t0).as_secs_f64();
            (dt > 0.0).then(|| (model.samples.saturating_sub(*s0)) as f64 / dt)
        });

        if once {
            print!("{}", model.render(width, rate));
            return Ok(());
        }
        // Clear screen, home the cursor, redraw.
        print!("\x1b[2J\x1b[H{}", model.render(width, rate));
        {
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        if closed && drained {
            println!("campaign closed — {} scenarios done, {} failed", model.done, model.failed);
            return Ok(());
        }
    }
}

fn cmd_portal(args: &[String]) -> Result<(), String> {
    let path = flag_value(args, "--import").ok_or("portal needs --import FILE")?;
    let portal = AcdcPortal::new();
    let n = portal.import_jsonl(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    eprintln!("loaded {n} records");
    let experiment = match flag_value(args, "--experiment") {
        Some(id) => id.to_string(),
        None => portal
            .find("kind", "experiment")
            .first()
            .and_then(|v| {
                use sdl_lab::conf::ValueExt;
                v.opt_str("experiment_id").map(str::to_string)
            })
            .ok_or("no experiment records in file")?,
    };
    println!("{}", portal.summary_view(&experiment));
    if let Some(run) = flag_value(args, "--run") {
        let run: u32 = run.parse().map_err(|_| format!("bad --run '{run}'"))?;
        println!("{}", portal.run_detail(&experiment, run));
    }
    Ok(())
}
