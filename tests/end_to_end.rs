//! End-to-end integration: the full closed loop on the simulated workcell.

use sdl_lab::core::{run_one, AppConfig, ColorPickerApp, TerminationReason};
use sdl_lab::solvers::SolverKind;

fn quick(samples: u32, batch: u32) -> AppConfig {
    AppConfig { sample_budget: samples, batch, publish_images: false, ..AppConfig::default() }
}

#[test]
fn budget_run_completes_and_improves() {
    let out = run_one(quick(24, 4)).expect("run succeeds");
    assert_eq!(out.termination, TerminationReason::BudgetExhausted);
    assert_eq!(out.samples_measured, 24);
    assert_eq!(out.trajectory.len(), 24);
    // Improvement over the first sample is essentially guaranteed with 24
    // samples against a reachable mid-gray target.
    let first = out.trajectory.first().unwrap().best;
    assert!(out.best_score < first, "no improvement: {first} -> {}", out.best_score);
    assert!(out.best_score < 40.0, "best {}", out.best_score);
    // Trajectory invariants: best is non-increasing, samples numbered 1..N.
    for (i, p) in out.trajectory.iter().enumerate() {
        assert_eq!(p.sample as usize, i + 1);
        if i > 0 {
            assert!(p.best <= out.trajectory[i - 1].best + 1e-12);
            assert!(p.elapsed_min >= out.trajectory[i - 1].elapsed_min);
        }
        assert!(p.best <= p.score + 1e-12);
    }
}

#[test]
fn match_threshold_terminates_early() {
    let mut config = quick(96, 4);
    config.match_threshold = Some(30.0);
    let out = run_one(config).expect("run succeeds");
    match out.termination {
        TerminationReason::TargetMatched { score } => {
            assert!(score <= 30.0);
            assert!(out.samples_measured < 96, "should stop before the budget");
        }
        other => panic!("expected early match, got {other:?}"),
    }
}

#[test]
fn plates_are_consumed_and_swapped() {
    // 20 samples in batches of 15 on 96-well plates: 6 iterations fit per
    // plate at B=15, so two iterations need only one plate; but a batch
    // never splits across plates.
    let out = run_one(quick(45, 15)).expect("run succeeds");
    assert_eq!(out.samples_measured, 45);
    assert_eq!(out.plates_used, 1, "3 x 15 = 45 wells fit one plate");

    let out = run_one(quick(128, 1)).expect("run succeeds");
    assert_eq!(out.plates_used, 2, "128 single wells need two 96-well plates");
}

#[test]
fn out_of_plates_terminates_gracefully() {
    let mut config = quick(500, 96);
    // Tiny inventory: two plates only.
    config.workcell_yaml = config.workcell_yaml.replace("towers: [10, 10, 10, 10]", "towers: [2]");
    let out = run_one(config).expect("graceful termination");
    assert_eq!(out.termination, TerminationReason::OutOfPlates);
    assert_eq!(out.samples_measured, 192, "two full plates of samples");
}

#[test]
fn portal_holds_every_sample_record() {
    let out = run_one(quick(12, 3)).expect("run succeeds");
    let samples = out.portal.samples(&out.experiment_id);
    assert_eq!(samples.len(), 12);
    // Published metadata: exactly one experiment record.
    assert_eq!(out.portal.find("kind", "experiment").len(), 1);
    // Sequence numbers are 1..=12 in order, runs non-decreasing.
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.sample as usize, i + 1);
        assert_eq!(s.target, [120, 120, 120]);
        assert!(s.score >= 0.0);
    }
    assert_eq!(out.flow_stats.published, 13);
    assert_eq!(out.flow_stats.failed, 0);
}

#[test]
fn images_are_archived_when_enabled() {
    let mut config = quick(4, 2);
    config.publish_images = true;
    let out = run_one(config).expect("run succeeds");
    // 2 iterations -> 2 distinct frames in the blob store.
    assert_eq!(out.store.len(), 2);
    let samples = out.portal.samples(&out.experiment_id);
    assert!(samples.iter().all(|s| s.image_ref.is_some()));
    // Samples of the same iteration share a frame.
    assert_eq!(samples[0].image_ref, samples[1].image_ref);
    assert_ne!(samples[0].image_ref, samples[2].image_ref);
}

#[test]
fn runlogs_record_every_workflow() {
    let mut app = ColorPickerApp::new(quick(6, 3)).expect("app builds");
    let out = app.run().expect("run succeeds");
    let history = &app.engine().history;
    // 1 newplate + 2 mixcolor + final trashplate (+ maybe replenish).
    let mix = history.iter().filter(|l| l.workflow == "cp_wf_mixcolor").count();
    assert_eq!(mix, 2);
    assert_eq!(history.iter().filter(|l| l.workflow == "cp_wf_newplate").count(), 1);
    assert_eq!(history.iter().filter(|l| l.workflow == "cp_wf_trashplate").count(), 1);
    // Step records inside a log are contiguous in time.
    for log in history {
        for w in log.records.windows(2) {
            assert!(w[1].start >= w[0].end, "steps overlap in {}", log.workflow);
        }
        assert!(log.render().contains(&log.workflow));
    }
    drop(out);
}

#[test]
fn all_solvers_complete_the_loop() {
    for kind in SolverKind::all() {
        let mut config = quick(8, 4);
        config.solver = kind;
        let out = run_one(config).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(out.samples_measured, 8, "{}", kind.name());
        // The oracle should essentially nail the target immediately.
        if kind == SolverKind::Analytic {
            assert!(out.best_score < 15.0, "oracle best {}", out.best_score);
        }
    }
}
