//! Chaos-engineering integration tests: deterministic fault injection on
//! the driver-worker wire and inside the worker itself must never corrupt
//! a campaign. Retry-safe fault families leave the fingerprint
//! bit-identical at any pool size; poison-pill scenarios terminate as
//! deterministic quarantined failures instead of livelocking the pool;
//! and the `watch` dashboard gives up cleanly when its server dies.

use sdl_lab::core::{
    AppConfig, CampaignRunner, CampaignScheduler, ChaosPolicy, RetryPolicy, ScenarioSpec,
};
use sdl_lab::datapub::{AcdcPortal, BlobStore};
use sdl_lab::portal_server::{spawn, LabHost, PortalServer, ServerConfig, ServerHandle};
use sdl_lab::solvers::SolverKind;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn worker_server() -> ServerHandle {
    chaotic_worker_on("127.0.0.1:0", ChaosPolicy::default())
}

/// A lab worker whose request handling misbehaves per `policy`.
fn chaotic_worker_on(addr: &str, policy: ChaosPolicy) -> ServerHandle {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let server =
        PortalServer::new(portal, store).with_lab(Arc::new(LabHost::new().with_chaos(policy)));
    spawn(server, &ServerConfig { addr: addr.to_string(), ..ServerConfig::default() })
        .expect("bind worker server")
}

/// An address nothing listens on (bind an ephemeral port, then free it).
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

/// Tight backoffs and a generous resend budget: chaos tests inject lots of
/// transient faults and should ride them out quickly.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_secs(30),
        retries: 6,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

fn config(solver: SolverKind, samples: u32, batch: u32, seed: u64) -> AppConfig {
    AppConfig {
        solver,
        sample_budget: samples,
        batch,
        seed,
        publish_images: false,
        ..AppConfig::default()
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new("g1", config(SolverKind::Genetic, 8, 2, 101)),
        ScenarioSpec::new("b1", config(SolverKind::Bayesian, 6, 3, 102)),
        ScenarioSpec::new("r1", config(SolverKind::Random, 8, 4, 103)),
        ScenarioSpec::new("g2", config(SolverKind::Genetic, 6, 2, 104)),
        ScenarioSpec::new("r2", config(SolverKind::Random, 6, 2, 105)),
        ScenarioSpec::new("b2", config(SolverKind::Bayesian, 8, 2, 106)),
    ]
}

#[test]
fn retry_safe_client_chaos_keeps_fingerprints_bit_identical() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    let chaos =
        ChaosPolicy::parse("seed=7,connect=0.1,disconnect=0.1,http500=0.1,replay=0.1").unwrap();
    assert!(chaos.is_retry_safe());
    for pool in [1usize, 2, 4] {
        let handles: Vec<ServerHandle> = (0..pool).map(|_| worker_server()).collect();
        let urls: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
        let (report, sched) = CampaignScheduler::new(urls)
            .retry(chaos_retry())
            .chaos(chaos)
            .failure_budget(0)
            .run(scenarios());
        assert_eq!(
            golden.fingerprint(),
            report.fingerprint(),
            "fingerprint drift under chaos at pool={pool}"
        );
        assert!(sched.total_chaos_injected() > 0, "chaos never fired at pool={pool}: {sched:?}");
        assert_eq!(sched.total_quarantined(), 0, "budget 0 must never quarantine");
        assert!(report.results.iter().all(|r| r.outcome.is_ok()));
        for h in handles {
            h.shutdown();
        }
    }
}

#[test]
fn injected_timeouts_evict_and_redrive_without_corruption() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    let handle = worker_server();
    // Timeouts are not resend-safe inside a session (the worker may have
    // executed the batch), so they surface as evictions + full re-drives —
    // which the ordered merge absorbs without a trace.
    let chaos = ChaosPolicy::parse("seed=11,timeout=0.2").unwrap();
    let (report, sched) = CampaignScheduler::new(vec![handle.addr().to_string()])
        .retry(chaos_retry())
        .probe_budget(10_000)
        .chaos(chaos)
        .failure_budget(0)
        .shard_size(1)
        .run(scenarios());
    assert_eq!(golden.fingerprint(), report.fingerprint(), "timeout chaos corrupted the merge");
    assert!(sched.total_chaos_injected() > 0, "timeout chaos never fired: {sched:?}");
    assert!(
        sched.total_evictions() >= 1,
        "an injected read timeout must evict the worker: {sched:?}"
    );
    assert!(report.results.iter().all(|r| r.outcome.is_ok()));
    handle.shutdown();
}

#[test]
fn chaos_schedule_is_reproducible_run_to_run() {
    // The chaos stream is keyed by (seed, worker url, scenario, attempt),
    // so the same pool address + seed must reproduce the exact same fault
    // interleaving — counters included. Rates are chosen well inside the
    // resend budget so no attempt ever escalates to an eviction (which
    // would hand work to the timing-dependent local fallback).
    let addr = dead_addr(); // reserve a port we can bind twice in sequence
    let chaos = ChaosPolicy::parse("seed=42,disconnect=0.08,http500=0.08,replay=0.08").unwrap();
    let run = || {
        let handle = chaotic_worker_on(&addr, ChaosPolicy::default());
        let (report, sched) = CampaignScheduler::new(vec![handle.addr().to_string()])
            .retry(chaos_retry())
            .chaos(chaos)
            .failure_budget(0)
            .run(scenarios());
        handle.shutdown();
        (report.fingerprint(), sched.total_chaos_injected(), sched.total_evictions())
    };
    let (fp1, injected1, evictions1) = run();
    let (fp2, injected2, evictions2) = run();
    assert!(injected1 > 0, "chaos never fired");
    assert_eq!(evictions1, 0, "rates must stay inside the resend budget");
    assert_eq!(fp1, fp2, "same seed, same schedule, different campaign");
    assert_eq!(
        (injected1, evictions1),
        (injected2, evictions2),
        "fault interleaving drifted between identical runs"
    );
}

#[test]
fn worker_side_chaos_degrades_gracefully() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    // The worker itself stalls and hangs up mid-campaign. /healthz is never
    // chaos'd, so the scheduler's probe loop keeps readmitting it.
    let policy = ChaosPolicy::parse("seed=5,kill=0.15,stall=0.1,stall_ms=1").unwrap();
    let handle = chaotic_worker_on("127.0.0.1:0", policy);
    let (report, sched) = CampaignScheduler::new(vec![handle.addr().to_string()])
        .retry(chaos_retry())
        .probe_budget(10_000)
        .failure_budget(0)
        .run(scenarios());
    assert_eq!(golden.fingerprint(), report.fingerprint(), "a flaky worker corrupted the campaign");
    assert!(report.results.iter().all(|r| r.outcome.is_ok()));
    assert_eq!(sched.total_quarantined(), 0);
    handle.shutdown();
}

#[test]
fn poison_worker_quarantines_every_scenario_deterministically() {
    // kill=1 drops every /v1 connection: every delivery attempt dies, and
    // with a budget of 1 each scenario is quarantined on its first failed
    // attempt — the driver stays healthy (no eviction), so the local
    // fallback never rescues anything and the failure set is exact.
    let policy = ChaosPolicy::parse("seed=1,kill=1").unwrap();
    let handle = chaotic_worker_on("127.0.0.1:0", policy);
    let (report, sched) = CampaignScheduler::new(vec![handle.addr().to_string()])
        .retry(RetryPolicy {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_secs(30),
            retries: 1,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            ..RetryPolicy::default()
        })
        .failure_budget(1)
        .shard_size(1)
        .run(scenarios());
    assert_eq!(sched.total_quarantined(), scenarios().len() as u64, "{sched:?}");
    assert_eq!(sched.total_evictions(), 0, "quarantine must not evict the driver: {sched:?}");
    assert_eq!(sched.fallback, 0, "the healthy driver must keep the fallback out: {sched:?}");
    for r in &report.results {
        let err = r.outcome.as_ref().expect_err("poisoned scenario must fail");
        let msg = err.to_string();
        assert!(msg.contains("quarantined"), "not a quarantine failure: {msg}");
    }
    handle.shutdown();
}

#[test]
fn watch_gives_up_when_no_server_answers() {
    let bin = env!("CARGO_BIN_EXE_sdl-lab");
    let addr = dead_addr();
    let started = Instant::now();
    let watch = std::process::Command::new(bin)
        .args(["watch", &format!("http://{addr}"), "--interval-ms", "100"])
        .output()
        .expect("run sdl-lab watch");
    assert!(!watch.status.success(), "watch must fail against a dead address");
    let err = String::from_utf8_lossy(&watch.stderr);
    assert!(err.contains("unreachable after"), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "watch took too long to give up: {:?}",
        started.elapsed()
    );
}

#[test]
fn watch_exits_with_an_error_when_its_server_is_killed() {
    use std::io::{BufRead as _, BufReader};
    use std::process::{Command, Stdio};

    let bin = env!("CARGO_BIN_EXE_sdl-lab");
    let dir = std::env::temp_dir().join(format!("sdl-chaos-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let yaml = dir.join("campaign.yaml");
    // One slow scenario keeps the event log open long enough to kill the
    // server while watch is mid-poll.
    std::fs::write(
        &yaml,
        "name: watch-me-die\nsamples: 600\nbatch: 1\nseed: 7\npublish_images: false\n\
         solvers: [random]\nseeds: 1\n",
    )
    .unwrap();
    let mut serve = Command::new(bin)
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--campaign"])
        .arg(&yaml)
        .args(["--campaign-threads", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sdl-lab serve --campaign");
    let mut banner = String::new();
    BufReader::new(serve.stdout.take().unwrap()).read_line(&mut banner).unwrap();
    let addr = banner.trim().strip_prefix("serving on ").unwrap().to_string();

    let mut watch = Command::new(bin)
        .args(["watch", &addr, "--interval-ms", "100"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sdl-lab watch");
    // Let the dashboard connect and start polling, then yank the server.
    std::thread::sleep(Duration::from_millis(700));
    serve.kill().expect("kill serve");
    let _ = serve.wait();

    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = watch.try_wait().expect("poll watch") {
            break status;
        }
        if Instant::now() > deadline {
            let _ = watch.kill();
            let _ = watch.wait();
            panic!("watch kept spinning after its server died");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(!status.success(), "watch must exit nonzero when the server dies");
    let mut err = String::new();
    use std::io::Read as _;
    watch.stderr.take().unwrap().read_to_string(&mut err).unwrap();
    assert!(err.contains("unreachable after") || err.contains("lost the server after"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
