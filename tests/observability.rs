//! Live observability, end to end against the real binary: a serving
//! campaign streams `/events` (long-poll and SSE), exposes the
//! `sdl_lab_campaign_*` gauges, and feeds the `sdl-lab watch` dashboard.

use sdl_lab::core::{EventRecord, ProgressModel};
use sdl_lab::portal_server::client::{self, HttpClient};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CAMPAIGN_YAML: &str = "name: observe-me\n\
                             samples: 6\n\
                             batch: 2\n\
                             seed: 400\n\
                             publish_images: false\n\
                             solvers: [genetic, random]\n\
                             seeds: 2\n";
const SCENARIOS: usize = 4;
const SAMPLES: u64 = 4 * 6;

struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdl-observability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn `sdl-lab serve --campaign` with a durable event log and parse
/// the banner for the bound address.
fn spawn_serving_campaign(yaml: &PathBuf, log: &PathBuf) -> (ServeGuard, SocketAddr) {
    let bin = env!("CARGO_BIN_EXE_sdl-lab");
    let mut child = Command::new(bin)
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "4", "--campaign"])
        .arg(yaml)
        .arg("--event-log")
        .arg(log)
        .args(["--campaign-threads", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sdl-lab serve --campaign");
    let stdout = child.stdout.take().unwrap();
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).unwrap();
    let addr: SocketAddr = banner
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .parse()
        .unwrap();
    (ServeGuard(child), addr)
}

#[test]
fn live_campaign_streams_events_gauges_and_dashboard() {
    let dir = workdir();
    let yaml = dir.join("campaign.yaml");
    let log = dir.join("campaign.events");
    std::fs::write(&yaml, CAMPAIGN_YAML).unwrap();
    let (guard, addr) = spawn_serving_campaign(&yaml, &log);

    // 1. Long-poll /events from seq 1 while the campaign runs, folding
    //    every line into a ProgressModel until the log closes.
    let mut model = ProgressModel::new();
    let mut from = 1u64;
    let mut conn = HttpClient::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        assert!(Instant::now() < deadline, "campaign never closed its event log");
        let resp = conn
            .get(&format!("/events?from={from}&limit=1000&timeout_ms=2000"))
            .expect("long-poll /events");
        assert_eq!(resp.status, 200);
        for line in resp.text().lines() {
            let rec = EventRecord::from_line(line).expect("event lines verify");
            assert_eq!(rec.seq, model.seq + 1, "no gaps, no duplicates");
            model.apply(rec.seq, &rec.event);
        }
        from = resp.header("x-next-seq").unwrap().parse().unwrap();
        let head: u64 = resp.header("x-event-head").unwrap().parse().unwrap();
        if resp.header("x-log-closed") == Some("true") && from > head {
            break;
        }
    }
    assert_eq!(model.campaign, "observe-me");
    assert!(model.closed);
    assert_eq!(model.total, SCENARIOS);
    assert_eq!(model.done, SCENARIOS);
    assert_eq!(model.failed, 0);
    assert_eq!(model.samples, SAMPLES);
    assert!(model.best.is_some());

    // 2. The /metrics gauges agree with the folded model.
    let metrics = client::get(addr, "/metrics").expect("/metrics").text();
    let gauge = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{name}{{campaign=\"observe-me\"}}")))
            .and_then(|l| l.split_ascii_whitespace().last())
            .unwrap_or_else(|| panic!("missing gauge {name} in:\n{metrics}"))
            .parse()
            .unwrap()
    };
    assert_eq!(gauge("sdl_lab_campaign_scenarios_total") as usize, SCENARIOS);
    assert_eq!(gauge("sdl_lab_campaign_scenarios_done") as usize, SCENARIOS);
    assert_eq!(gauge("sdl_lab_campaign_scenarios_failed") as usize, 0);
    assert_eq!(gauge("sdl_lab_campaign_samples_published") as u64, SAMPLES);
    assert_eq!(gauge("sdl_lab_campaign_event_seq") as u64, model.seq);
    assert_eq!(gauge("sdl_lab_campaign_closed") as u64, 1);

    // 3. The SSE stream replays the same log and terminates with a close
    //    frame (raw socket: the client helper is Content-Length-only).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(stream, "GET /events/stream HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut sse = String::new();
    stream.read_to_string(&mut sse).expect("SSE stream reads to EOF");
    assert!(sse.starts_with("HTTP/1.1 200 OK\r\n"), "{sse}");
    assert!(sse.contains("Content-Type: text/event-stream"), "{sse}");
    // Every frame's "id: N" line is newline-preceded (the first by the
    // blank line ending the headers), so this counts frames exactly.
    let frames = sse.matches("\nid: ").count();
    assert_eq!(frames as u64, model.seq, "one SSE frame per log line");
    assert!(sse.trim_end().ends_with("event: close\ndata: end of log"), "{sse}");

    // 4. The terminal dashboard renders the finished campaign.
    let bin = env!("CARGO_BIN_EXE_sdl-lab");
    let watch = Command::new(bin)
        .args(["watch", &format!("http://{addr}"), "--once"])
        .output()
        .expect("run sdl-lab watch --once");
    let text = String::from_utf8_lossy(&watch.stdout);
    assert!(watch.status.success(), "watch failed: {text}");
    assert!(text.contains("campaign observe-me"), "{text}");
    assert!(text.contains("[closed]"), "{text}");
    assert!(text.contains(&format!("{SCENARIOS}/{SCENARIOS} scenarios")), "{text}");
    assert!(text.contains(&format!("samples {SAMPLES}")), "{text}");

    // 5. The durable log on disk is byte-for-byte what /events served.
    let disk = std::fs::read_to_string(&log).unwrap();
    assert_eq!(disk.lines().count() as u64, model.seq);

    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_refuses_a_server_without_an_event_log() {
    // A bare worker-mode server has no campaign event log: /events is 404
    // and watch reports it cleanly.
    let bin = env!("CARGO_BIN_EXE_sdl-lab");
    let mut child = Command::new(bin)
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sdl-lab serve");
    let stdout = child.stdout.take().unwrap();
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).unwrap();
    let addr = banner.trim().strip_prefix("serving on http://").unwrap().to_string();
    let guard = ServeGuard(child);

    let resp = client::get(&*addr, "/events").expect("/events answers");
    assert_eq!(resp.status, 404);
    let watch = Command::new(bin)
        .args(["watch", &format!("http://{addr}"), "--once"])
        .output()
        .expect("run watch");
    assert!(!watch.status.success());
    let err = String::from_utf8_lossy(&watch.stderr);
    assert!(err.contains("no campaign event log"), "{err}");
    drop(guard);
}
