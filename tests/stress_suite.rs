//! Stress-suite integration: the ColorBench-style matrix — perceptual
//! objectives under drift, multi-target and moving-target conditions —
//! must be deterministic through every execution path: thread pools,
//! distributed worker pools at any shard size, and event-log resume. The
//! leaderboard folded out of each path must be identical too.

use sdl_lab::color::Objective;
use sdl_lab::core::{
    AppConfig, CampaignRunner, CampaignScheduler, EventLog, Leaderboard, StressKind, StressSuite,
};
use sdl_lab::datapub::{AcdcPortal, BlobStore};
use sdl_lab::portal_server::{spawn, LabHost, PortalServer, ServerConfig, ServerHandle};
use sdl_lab::solvers::SolverKind;
use std::sync::Arc;

fn worker_server() -> ServerHandle {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let server = PortalServer::new(portal, store).with_lab(Arc::new(LabHost::new()));
    spawn(server, &ServerConfig::default()).expect("bind worker server")
}

/// Every cell is a non-default condition: a perceptual objective crossed
/// with drift, multi-target and moving-target stress.
fn tiny_suite() -> StressSuite {
    let mut suite = StressSuite::new(AppConfig {
        sample_budget: 4,
        batch: 2,
        seed: 5,
        publish_images: false,
        ..AppConfig::default()
    });
    suite.solvers = vec![SolverKind::Random, SolverKind::Annealing];
    suite.objectives = vec![Objective::Ciede2000];
    suite.kinds = vec![
        StressKind::WbDrift,
        StressKind::GainDrift,
        StressKind::MultiTarget,
        StressKind::MovingTarget,
    ];
    suite.seeds = vec![5];
    suite
}

#[test]
fn stress_fingerprint_is_bit_identical_across_threads_and_worker_pools() {
    let suite = tiny_suite();
    let golden = CampaignRunner::new().threads(1).run(suite.scenarios());
    let fp = golden.fingerprint();
    assert!(!fp.is_empty());
    // Same seed, same fingerprint: the drift and target perturbations are
    // counter-derived, never wall-clock- or thread-derived.
    assert_eq!(fp, CampaignRunner::new().threads(1).run(suite.scenarios()).fingerprint());
    assert_eq!(fp, CampaignRunner::new().threads(4).run(suite.scenarios()).fingerprint());

    let handles: Vec<ServerHandle> = (0..2).map(|_| worker_server()).collect();
    let urls: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    for shard in [1usize, 3] {
        let (report, _) =
            CampaignScheduler::new(urls.clone()).shard_size(shard).run(suite.scenarios());
        assert_eq!(fp, report.fingerprint(), "fingerprint drift at shard={shard}");
        assert_eq!(
            Leaderboard::from_report(&golden).rows,
            Leaderboard::from_report(&report).rows,
            "leaderboard drift at shard={shard}"
        );
    }
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn stress_campaign_resumes_bit_identically_from_a_truncated_log() {
    let suite = tiny_suite();
    let golden = CampaignRunner::new().threads(1).run(suite.scenarios());

    let dir = std::env::temp_dir().join(format!("sdl-stress-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("stress.events");
    {
        let log = Arc::new(EventLog::create(&log_path).expect("create event log"));
        let _ = CampaignRunner::new().threads(1).with_events(log).run(suite.scenarios());
    }

    // Simulate a crash: cut the log right after the second finished
    // scenario, so the resume has completed work to replay and remaining
    // work to re-drive.
    let text = std::fs::read_to_string(&log_path).unwrap();
    let mut kept = String::new();
    let mut finished = 0;
    for line in text.lines() {
        kept.push_str(line);
        kept.push('\n');
        if line.contains("scenario_finished") {
            finished += 1;
            if finished == 2 {
                break;
            }
        }
    }
    assert_eq!(finished, 2, "log holds fewer than two finished scenarios");
    std::fs::write(&log_path, kept).unwrap();

    let (report, stats) =
        CampaignRunner::new().threads(1).resume(&log_path).expect("resume succeeds");
    assert_eq!(
        golden.fingerprint(),
        report.fingerprint(),
        "resumed stress campaign diverged (replayed {}, redriven {})",
        stats.replayed,
        stats.redriven
    );
    assert_eq!(stats.replayed, 2, "the two logged scenarios replay, not re-run");
    assert_eq!(stats.replayed + stats.redriven, suite.len());
    assert_eq!(Leaderboard::from_report(&golden).rows, Leaderboard::from_report(&report).rows);
    let _ = std::fs::remove_dir_all(&dir);
}
