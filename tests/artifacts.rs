//! Artifact-export integration: run logs, JSON-lines portal dumps and the
//! HTML portal view, produced by a real experiment and read back.

use sdl_lab::core::{AppConfig, ColorPickerApp};
use sdl_lab::datapub::AcdcPortal;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sdl-artifacts-{}-{name}", std::process::id()))
}

#[test]
fn full_artifact_pipeline() {
    let config =
        AppConfig { sample_budget: 6, batch: 3, publish_images: true, ..AppConfig::default() };
    let mut app = ColorPickerApp::new(config).expect("app builds");
    let outcome = app.run().expect("run completes");

    // 1. Run logs: one text file per workflow, containing its steps.
    let logdir = tmp("logs");
    let n = app.engine().export_runlogs(&logdir).expect("export logs");
    assert!(n >= 4, "newplate + 2 mixcolor + trashplate, got {n}");
    let entries: Vec<_> = std::fs::read_dir(&logdir).unwrap().collect();
    assert_eq!(entries.len(), n);
    let mix_log = std::fs::read_to_string(
        std::fs::read_dir(&logdir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().contains("mixcolor"))
            .expect("a mixcolor log exists")
            .path(),
    )
    .unwrap();
    assert!(mix_log.contains("Ot2.Run_Protocol"));
    assert!(mix_log.contains("duration="));

    // 2. JSON-lines export reloads into an equivalent portal.
    let jsonl = tmp("portal.jsonl");
    let exported = outcome.portal.export_jsonl(&jsonl).expect("export jsonl");
    let fresh = AcdcPortal::new();
    assert_eq!(fresh.import_jsonl(&jsonl).unwrap(), exported);
    assert_eq!(fresh.samples(&outcome.experiment_id).len(), 6);
    // Step timings ride with the first sample of each iteration.
    let with_timing = fresh.search(|r| {
        use sdl_lab::conf::ValueExt;
        r.req("timing").is_ok()
    });
    assert_eq!(with_timing.len(), 2, "one timing block per iteration");

    // 3. HTML view embeds the archived plate frames as BMP data URIs.
    let html_path = tmp("portal.html");
    outcome
        .portal
        .export_html(&html_path, &outcome.experiment_id, Some(&outcome.store))
        .expect("export html");
    let html = std::fs::read_to_string(&html_path).unwrap();
    assert!(html.contains("<h1>ACDC portal"));
    assert_eq!(html.matches("data:image/bmp;base64,").count(), 2, "one frame per run");
    assert!(html.contains("run #1") && html.contains("run #2"));

    for p in [logdir, jsonl, html_path] {
        let _ = std::fs::remove_dir_all(&p);
        let _ = std::fs::remove_file(&p);
    }
}
