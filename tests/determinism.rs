//! Reproducibility: an experiment is a pure function of its configuration.

use sdl_lab::core::{run_one, AppConfig};

fn config(seed: u64) -> AppConfig {
    AppConfig { sample_budget: 16, batch: 4, seed, publish_images: false, ..AppConfig::default() }
}

#[test]
fn same_seed_reproduces_everything() {
    let a = run_one(config(1234)).expect("first run");
    let b = run_one(config(1234)).expect("second run");
    assert_eq!(a.best_score, b.best_score);
    assert_eq!(a.best_ratios, b.best_ratios);
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.trajectory, b.trajectory);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.counters, b.counters);
    // Published records match sample for sample.
    let sa = a.portal.samples(&a.experiment_id);
    let sb = b.portal.samples(&b.experiment_id);
    assert_eq!(sa, sb);
}

#[test]
fn different_seeds_diverge() {
    let a = run_one(config(1)).expect("seed 1");
    let b = run_one(config(2)).expect("seed 2");
    assert_ne!(a.trajectory, b.trajectory, "different seeds must explore differently");
}

#[test]
fn seed_does_not_change_structure() {
    // Timing jitter differs by seed, but structural accounting must not.
    let a = run_one(config(10)).expect("seed 10");
    let b = run_one(config(20)).expect("seed 20");
    assert_eq!(a.samples_measured, b.samples_measured);
    assert_eq!(a.plates_used, b.plates_used);
    assert_eq!(a.counters.completed, b.counters.completed);
    // Durations are close (jitter is ±2%) but not equal.
    let ratio = a.duration.as_secs_f64() / b.duration.as_secs_f64();
    assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
}
