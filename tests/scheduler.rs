//! Distributed-campaign scheduler integration tests: the merged report
//! must be bit-identical to the single-process run at any worker count,
//! shard size, and failure pattern — dead workers degrade throughput,
//! never correctness.

use sdl_lab::core::{AppConfig, CampaignRunner, CampaignScheduler, RetryPolicy, ScenarioSpec};
use sdl_lab::datapub::{AcdcPortal, BlobStore};
use sdl_lab::portal_server::{spawn, LabHost, PortalServer, ServerConfig, ServerHandle};
use sdl_lab::solvers::SolverKind;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn worker_server() -> ServerHandle {
    worker_server_on("127.0.0.1:0")
}

fn worker_server_on(addr: &str) -> ServerHandle {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let server = PortalServer::new(portal, store).with_lab(Arc::new(LabHost::new()));
    spawn(server, &ServerConfig { addr: addr.to_string(), ..ServerConfig::default() })
        .expect("bind worker server")
}

/// An address nothing listens on (bind an ephemeral port, then free it).
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

/// A quick-failing policy so dead-worker tests don't wait out real backoff.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_secs(30),
        retries: 1,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        ..RetryPolicy::default()
    }
}

fn config(solver: SolverKind, samples: u32, batch: u32, seed: u64) -> AppConfig {
    AppConfig {
        solver,
        sample_budget: samples,
        batch,
        seed,
        publish_images: false,
        ..AppConfig::default()
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new("g1", config(SolverKind::Genetic, 8, 2, 101)),
        ScenarioSpec::new("b1", config(SolverKind::Bayesian, 6, 3, 102)),
        ScenarioSpec::new("r1", config(SolverKind::Random, 8, 4, 103)),
        ScenarioSpec::new("g2", config(SolverKind::Genetic, 6, 2, 104)),
        ScenarioSpec::new("r2", config(SolverKind::Random, 6, 2, 105)),
        ScenarioSpec::new("b2", config(SolverKind::Bayesian, 8, 2, 106)),
    ]
}

#[test]
fn distributed_fingerprint_is_bit_identical_at_any_pool_and_shard() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    for pool in [1usize, 2, 4] {
        let handles: Vec<ServerHandle> = (0..pool).map(|_| worker_server()).collect();
        let urls: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
        for shard in [1usize, 3] {
            let (report, sched) =
                CampaignScheduler::new(urls.clone()).shard_size(shard).run(scenarios());
            assert_eq!(
                golden.fingerprint(),
                report.fingerprint(),
                "fingerprint drift at pool={pool} shard={shard}"
            );
            assert_eq!(sched.total_evictions(), 0, "healthy pool must not evict");
            assert_eq!(sched.fallback, 0, "healthy pool needs no local fallback");
            let remote: u64 = sched.workers.iter().map(|w| w.completed).sum();
            assert_eq!(remote, scenarios().len() as u64, "every scenario ran remotely");
        }
        for h in handles {
            h.shutdown();
        }
    }
}

#[test]
fn scheduler_portal_stream_is_in_input_order() {
    use sdl_lab::conf::ValueExt;
    let handle = worker_server();
    let (report, _) =
        CampaignScheduler::new(vec![handle.addr().to_string()]).shard_size(2).run(scenarios());
    let records = report.portal.find("kind", "campaign_scenario");
    assert_eq!(records.len(), scenarios().len());
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.opt_i64("index"), Some(i as i64), "stream out of order");
    }
    assert_eq!(report.portal.find("kind", "campaign").len(), 1);
    // The scheduler's own accounting record rides along.
    let sched = report.portal.find("kind", "campaign_scheduler");
    assert_eq!(sched.len(), 1);
    assert_eq!(sched[0].opt_i64("pool"), Some(1));
    handle.shutdown();
}

#[test]
fn dead_worker_is_evicted_and_live_worker_absorbs_its_shards() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    let live = worker_server();
    let pool = vec![live.addr().to_string(), dead_addr()];
    let (report, sched) = CampaignScheduler::new(pool)
        .shard_size(1)
        .retry(fast_retry())
        .probe_budget(1)
        .run(scenarios());
    assert_eq!(golden.fingerprint(), report.fingerprint(), "dead worker corrupted the merge");
    assert!(sched.total_evictions() >= 1, "dead worker never evicted: {sched:?}");
    assert_eq!(sched.workers[1].completed, 0, "dead worker cannot complete work");
    assert!(
        sched.workers[0].completed + sched.fallback >= scenarios().len() as u64,
        "live worker + fallback must absorb everything: {sched:?}"
    );
    live.shutdown();
}

#[test]
fn fully_dead_pool_falls_back_to_in_process_execution() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    let (report, sched) = CampaignScheduler::new(vec![dead_addr(), dead_addr()])
        .retry(fast_retry())
        .probe_budget(1)
        .run(scenarios());
    assert_eq!(
        golden.fingerprint(),
        report.fingerprint(),
        "local fallback must reproduce the campaign exactly"
    );
    assert_eq!(sched.fallback, scenarios().len() as u64);
    assert!(sched.workers.iter().all(|w| w.completed == 0));
    assert!(report.results.iter().all(|r| r.outcome.is_ok()), "no scenario may fail");
}

#[test]
fn unshippable_scenarios_run_locally_alongside_the_pool() {
    let base = config(SolverKind::Random, 6, 2, 201);
    let mut specs = scenarios();
    specs.push(ScenarioSpec::multi_ot2("m2", base, 2));
    let golden = CampaignRunner::new().threads(2).run(specs.clone());

    let handle = worker_server();
    let (report, sched) =
        CampaignScheduler::new(vec![handle.addr().to_string()]).run(specs.clone());
    assert_eq!(golden.fingerprint(), report.fingerprint());
    assert_eq!(sched.local, 1, "the multi-OT2 scenario cannot ship over /v1");
    handle.shutdown();
}

#[test]
fn late_worker_is_readmitted_after_probing() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    let live = worker_server();
    // Reserve an address, leave it dead for now.
    let late_addr = dead_addr();
    let pool = vec![live.addr().to_string(), late_addr.clone()];

    let scheduler = CampaignScheduler::new(pool)
        .shard_size(1)
        .retry(fast_retry())
        // Generous probe budget: the late worker must still be probing when
        // it finally comes up.
        .probe_budget(10_000);
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        worker_server_on(&late_addr)
    });
    let (report, sched) = scheduler.run(scenarios());
    let late = late.join().unwrap();
    assert_eq!(golden.fingerprint(), report.fingerprint());
    assert!(sched.workers[1].evictions >= 1, "late worker starts dead: {sched:?}");
    assert!(report.results.iter().all(|r| r.outcome.is_ok()));
    live.shutdown();
    late.shutdown();
}

#[test]
fn empty_pool_runs_everything_in_process() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    let (report, sched) = CampaignScheduler::new(Vec::new()).run(scenarios());
    assert_eq!(golden.fingerprint(), report.fingerprint());
    assert!(sched.workers.is_empty());
}
