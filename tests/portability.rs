//! The platform claim: the unmodified application runs on any workcell that
//! provides the five module kinds, whatever they are named.

use sdl_lab::core::{run_one, AppConfig};

const RENAMED_CELL: &str = r#"
name: elsewhere
modules:
  - name: hotel
    type: plate_crane
    config: {towers: [4], exchange: hotel.port}
  - name: arm9
    type: manipulator
  - name: liq1
    type: liquid_handler
    config: {deck: liq1.stage, reservoir_capacity_ul: 5000, tips: 400}
  - name: refiller
    type: liquid_replenisher
    config: {feeds: liq1, stock_ul: 900000}
  - name: eye
    type: camera
    config: {nest: eye.mount}
"#;

#[test]
fn renamed_modules_run_unchanged() {
    let config = AppConfig {
        sample_budget: 9,
        batch: 3,
        workcell_yaml: RENAMED_CELL.to_string(),
        publish_images: false,
        ..AppConfig::default()
    };
    let out = run_one(config).expect("foreign workcell runs the same app");
    assert_eq!(out.samples_measured, 9);
    assert!(out.best_score.is_finite());
    // Metrics accounting works across names (actions, not names, bucket time).
    assert!(!out.metrics.synthesis.is_zero());
    assert!(!out.metrics.transfer.is_zero());
}

#[test]
fn missing_module_kind_is_a_setup_error() {
    let no_camera = RENAMED_CELL
        .lines()
        .take_while(|l| !l.contains("- name: eye"))
        .collect::<Vec<_>>()
        .join("\n");
    let config =
        AppConfig { workcell_yaml: no_camera, publish_images: false, ..AppConfig::default() };
    let err = sdl_lab::core::ColorPickerApp::new(config).err().expect("must fail");
    assert!(err.to_string().contains("camera"), "{err}");
}

#[test]
fn three_dye_problem_runs() {
    // CMY only: different search dimensionality end to end.
    let config = AppConfig {
        sample_budget: 8,
        batch: 4,
        dyes: sdl_lab::color::DyeSet::cmy(),
        publish_images: false,
        ..AppConfig::default()
    };
    let out = run_one(config).expect("CMY run");
    assert_eq!(out.samples_measured, 8);
    assert_eq!(out.best_ratios.len(), 3);
}
