//! Backend-interchangeability integration tests: the same scenario run
//! through `SimBackend`, `RemoteBackend` (against an in-process portal
//! server hosting the batch-execution API) and `ReplayBackend` must agree.

use sdl_lab::core::{
    AppConfig, BackendSpec, CampaignRunner, Experiment, RemoteBackend, ReplayBackend, ScenarioSpec,
    SimBackend, TerminationReason,
};
use sdl_lab::datapub::{AcdcPortal, BlobStore};
use sdl_lab::portal_server::{spawn, LabHost, PortalServer, ServerConfig};
use sdl_lab::solvers::SolverKind;
use std::sync::Arc;

fn worker_server() -> sdl_lab::portal_server::ServerHandle {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let server = PortalServer::new(portal, store).with_lab(Arc::new(LabHost::new()));
    spawn(server, &ServerConfig::default()).expect("bind worker server")
}

fn config(solver: SolverKind, samples: u32, batch: u32, seed: u64) -> AppConfig {
    AppConfig {
        solver,
        sample_budget: samples,
        batch,
        seed,
        publish_images: false,
        ..AppConfig::default()
    }
}

#[test]
fn remote_campaign_is_bit_identical_to_sim() {
    let handle = worker_server();
    let addr = handle.addr().to_string();

    let scenarios = |backend: BackendSpec| -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::new("g", config(SolverKind::Genetic, 10, 2, 21))
                .with_backend(backend.clone()),
            ScenarioSpec::new("b", config(SolverKind::Bayesian, 9, 3, 22))
                .with_backend(backend.clone()),
            ScenarioSpec::new("r", config(SolverKind::Random, 8, 4, 23)).with_backend(backend),
        ]
    };
    let sim = CampaignRunner::new().threads(2).run(scenarios(BackendSpec::Sim));
    let remote = CampaignRunner::new().threads(2).run(scenarios(BackendSpec::Remote(addr)));
    assert_eq!(
        sim.fingerprint(),
        remote.fingerprint(),
        "a remotely executed campaign must be bit-identical to the in-process one"
    );
    // Full telemetry survives the wire, not just the fingerprinted fields.
    for (s, r) in sim.results.iter().zip(&remote.results) {
        let (s, r) = (s.expect_single(), r.expect_single());
        assert_eq!(s.metrics, r.metrics, "metrics drifted over the wire");
        assert_eq!(s.counters, r.counters);
        assert_eq!(s.termination, r.termination);
    }
    handle.shutdown();
}

#[test]
fn remote_run_ships_plate_images_when_asked() {
    let handle = worker_server();
    let mut cfg = config(SolverKind::Random, 4, 2, 31);
    cfg.publish_images = true;

    let mut sim_session = Experiment::new(cfg.clone()).unwrap();
    let mut sim_backend = SimBackend::new(&cfg).unwrap();
    let sim_out = sim_session.run_on(&mut sim_backend).unwrap();

    let mut remote_session = Experiment::new(cfg.clone()).unwrap();
    let mut remote_backend = RemoteBackend::new(handle.addr().to_string(), cfg);
    let remote_out = remote_session.run_on(&mut remote_backend).unwrap();

    assert_eq!(sim_out.best_score.to_bits(), remote_out.best_score.to_bits());
    assert!(!remote_out.store.is_empty(), "plate frames must cross the wire");
    assert_eq!(
        sim_out.store.refs().len(),
        remote_out.store.refs().len(),
        "same number of plate frames"
    );
    // Hash-addressed blob refs match only if the bytes survived exactly.
    let mut sim_refs: Vec<String> = sim_out.store.refs().into_iter().map(|r| r.0).collect();
    let mut remote_refs: Vec<String> = remote_out.store.refs().into_iter().map(|r| r.0).collect();
    sim_refs.sort();
    remote_refs.sort();
    assert_eq!(sim_refs, remote_refs, "plate frames drifted over the wire");
    handle.shutdown();
}

#[test]
fn out_of_plates_at_open_terminates_identically_on_sim_and_remote() {
    // A crane with empty towers: the very first plate fetch aborts. Both
    // executors must report the OutOfPlates termination criterion (not an
    // error), with identical accounting.
    let mut cfg = config(SolverKind::Random, 4, 2, 51);
    cfg.workcell_yaml = sdl_lab::wei::RPL_WORKCELL_YAML.replace("[10, 10, 10, 10]", "[0]");

    let mut sim_session = Experiment::new(cfg.clone()).unwrap();
    let mut sim_lab = SimBackend::new(&cfg).unwrap();
    let sim = sim_session.run_on(&mut sim_lab).unwrap();
    assert_eq!(sim.termination, TerminationReason::OutOfPlates);
    assert_eq!(sim.samples_measured, 0);

    let handle = worker_server();
    let mut remote_session = Experiment::new(cfg.clone()).unwrap();
    let mut remote_lab = RemoteBackend::new(handle.addr().to_string(), cfg);
    let remote = remote_session.run_on(&mut remote_lab).unwrap();
    assert_eq!(remote.termination, TerminationReason::OutOfPlates);
    assert_eq!(remote.samples_measured, 0);
    assert_eq!(sim.duration, remote.duration);
    assert_eq!(sim.counters, remote.counters);
    handle.shutdown();
}

#[test]
fn replay_reproduces_a_recorded_run_exactly() {
    let cfg = config(SolverKind::Bayesian, 12, 3, 44);

    let mut live_session = Experiment::new(cfg.clone()).unwrap();
    let mut live_backend = SimBackend::new(&cfg).unwrap();
    let live = live_session.run_on(&mut live_backend).unwrap();
    let records = live.portal.samples(&live.experiment_id);
    assert_eq!(records.len(), 12);

    let mut replay_session = Experiment::new(cfg).unwrap();
    let mut replay = ReplayBackend::from_records(records);
    let replayed = replay_session.run_on(&mut replay).unwrap();

    assert_eq!(replayed.termination, TerminationReason::BudgetExhausted);
    assert_eq!(replayed.samples_measured, live.samples_measured);
    assert_eq!(replayed.best_score.to_bits(), live.best_score.to_bits());
    assert_eq!(replayed.best_ratios, live.best_ratios);
    assert_eq!(replayed.trajectory.len(), live.trajectory.len());
    for (a, b) in live.trajectory.iter().zip(&replayed.trajectory) {
        assert_eq!(a.sample, b.sample);
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "sample {}", a.sample);
        assert_eq!(a.best.to_bits(), b.best.to_bits(), "sample {}", a.sample);
        assert_eq!(
            a.elapsed_min.to_bits(),
            b.elapsed_min.to_bits(),
            "recorded clock must survive sample {}",
            a.sample
        );
    }
}

#[test]
fn replay_survives_a_jsonl_export_roundtrip() {
    let cfg = config(SolverKind::Genetic, 8, 2, 45);
    let mut session = Experiment::new(cfg.clone()).unwrap();
    let mut backend = SimBackend::new(&cfg).unwrap();
    let live = session.run_on(&mut backend).unwrap();

    let dir = std::env::temp_dir().join(format!("sdl-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("export.jsonl");
    live.portal.export_jsonl(&path).unwrap();

    let mut replay_session = Experiment::new(cfg.clone()).unwrap();
    let mut replay = ReplayBackend::from_jsonl(&path, Some(&cfg.experiment_id())).unwrap();
    let replayed = replay_session.run_on(&mut replay).unwrap();
    assert_eq!(replayed.best_score.to_bits(), live.best_score.to_bits());
    assert_eq!(replayed.samples_measured, live.samples_measured);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn wrong_seed_replay_fails_loudly() {
    let cfg = config(SolverKind::Genetic, 6, 2, 46);
    let mut session = Experiment::new(cfg.clone()).unwrap();
    let mut backend = SimBackend::new(&cfg).unwrap();
    let live = session.run_on(&mut backend).unwrap();

    let mut other = cfg;
    other.seed = 47;
    let mut replay_session = Experiment::new(other).unwrap();
    let mut replay = ReplayBackend::from_records(live.portal.samples(&live.experiment_id));
    let err = replay_session.run_on(&mut replay).unwrap_err();
    assert!(err.to_string().contains("diverged"), "{err}");
}
