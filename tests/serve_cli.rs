//! End-to-end test of `sdl-lab serve`: run an experiment, export its
//! portal + blobs, serve them from the real binary, and query over HTTP.

use sdl_lab::conf::ValueExt;
use sdl_lab::portal_server::client;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdl-serve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn serve_answers_http_over_a_saved_export() {
    let bin = env!("CARGO_BIN_EXE_sdl-lab");
    let dir = workdir();
    let export = dir.join("portal.jsonl");
    let blobs = dir.join("blobs");

    // 1. Produce a portal export (with spilled plate images) the normal way.
    let run = Command::new(bin)
        .args([
            "run",
            "--samples",
            "4",
            "--batch",
            "2",
            "--export-portal",
            export.to_str().unwrap(),
            "--blob-dir",
            blobs.to_str().unwrap(),
        ])
        .output()
        .expect("run sdl-lab run");
    assert!(run.status.success(), "{}", String::from_utf8_lossy(&run.stderr));
    assert!(export.exists());

    // 2. Serve it on an ephemeral port; the bound address is printed first.
    let mut child = Command::new(bin)
        .args([
            "serve",
            "--import",
            export.to_str().unwrap(),
            "--blob-dir",
            blobs.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "4",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sdl-lab serve");
    let stdout = child.stdout.take().unwrap();
    let guard = ServeGuard(child);
    let mut first_line = String::new();
    BufReader::new(stdout).read_line(&mut first_line).unwrap();
    let addr: SocketAddr = first_line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line:?}"))
        .parse()
        .unwrap();

    // 3. Drive the live server.
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let v = sdl_lab::conf::from_json(&health.text()).unwrap();
    assert_eq!(v.opt_str("status"), Some("ok"));
    assert!(v.opt_i64("records").unwrap() >= 5, "experiment + 4 samples expected");
    assert!(v.opt_i64("blobs").unwrap() >= 1, "spilled plate images must be served");

    let samples = client::get(addr, "/records?kind=sample").unwrap();
    let lines: Vec<String> = samples.text().lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 4);
    // A sample's image_ref resolves through /blobs/ after the spill
    // round-trip (run wrote the dir, serve reloaded it).
    let image_ref = sdl_lab::conf::from_json(&lines[0])
        .unwrap()
        .opt_str("image_ref")
        .expect("sample has image_ref")
        .to_string();
    let img = client::get(addr, &format!("/blobs/{image_ref}")).unwrap();
    assert_eq!(img.status, 200, "blob {image_ref} not served");
    assert!(!img.body.is_empty());

    let summary = client::get(addr, "/summary").unwrap();
    assert_eq!(summary.status, 200);
    assert!(summary.text().contains("ACDC portal"));

    let metrics = client::get(addr, "/metrics").unwrap();
    assert!(metrics.text().contains("sdl_portal_requests_total"));

    drop(guard);
    let _ = std::fs::remove_dir_all(dir);
}
