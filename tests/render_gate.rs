//! Detector-accuracy regression gate for the counter-based render path.
//!
//! The fast renderer is only allowed to differ from the frozen reference
//! by its noise realization — never systematically. This gate renders a
//! seeded 16-scenario matrix (fill patterns × poses × lighting) through
//! both paths, runs the unchanged §2.4 detection pipeline on each frame,
//! and requires the per-well readings to agree within a tolerance far
//! below the solver-visible signal. A bias in the fast path's transfer
//! curve, noise amplitude, vignette or geometry shows up here as a mean
//! shift long before it would corrupt a campaign.

use sdl_lab::color::LinRgb;
use sdl_lab::desim::RngHub;
use sdl_lab::vision::{
    render_reference, render_tiled, CameraGeometry, Detector, Fidelity, ImageRgb8, PlateScene, Pose,
};

/// One gate scenario: a deterministic scene derived from its index.
fn scenario(i: u64) -> PlateScene {
    use rand::Rng as _;
    let mut scene = PlateScene::empty_plate();
    let mut rng = RngHub::new(0xC0FFEE + i).stream("gate.scene");
    // 24–96 filled wells with varied colors.
    let filled = 24 + (i as usize * 5) % 73;
    for w in 0..filled {
        let color = LinRgb::new(
            rng.gen_range(0.02..0.7),
            rng.gen_range(0.02..0.7),
            rng.gen_range(0.02..0.7),
        );
        scene.set_well(w / 12, w % 12, color);
    }
    scene.pose = Pose {
        dx_px: rng.gen_range(-5.0..=5.0),
        dy_px: rng.gen_range(-5.0..=5.0),
        rot_deg: rng.gen_range(-1.0..=1.0),
    };
    scene.lighting.vignette = rng.gen_range(0.04..0.12);
    scene
}

#[test]
fn fast_path_detections_match_reference_within_tolerance() {
    let detector = Detector::default();
    let mut worst_well = 0.0f64;
    let mut total_mean = 0.0f64;
    for i in 0..16u64 {
        let scene = scenario(i);
        let mut rng = RngHub::new(0xBEEF + i).stream("gate.noise");
        let reference = detector.detect(&render_reference(&scene, &mut rng)).unwrap_or_else(|e| {
            panic!("scenario {i}: reference frame undetectable: {e}");
        });
        let mut fast_frame = ImageRgb8::new(1, 1, Default::default());
        render_tiled(&scene, 0x5EED ^ i, &mut fast_frame, 32, 1);
        let fast = detector.detect(&fast_frame).unwrap_or_else(|e| {
            panic!("scenario {i}: fast frame undetectable: {e}");
        });

        let mut mean = 0.0f64;
        for (r, f) in reference.wells.iter().zip(&fast.wells) {
            assert_eq!((r.row, r.col), (f.row, f.col));
            let d = r.color.distance(f.color);
            worst_well = worst_well.max(d);
            mean += d;
        }
        mean /= reference.wells.len() as f64;
        total_mean += mean;
        assert!(
            mean < 2.0,
            "scenario {i}: mean per-well deviation {mean:.2} RGB units (noise-only \
             disagreement should stay well under 2)"
        );
    }
    total_mean /= 16.0;
    // Independent noise realizations at sigma 0.006 move a ~100-px well
    // mean by a fraction of an RGB unit; systematic render bias would not.
    assert!(total_mean < 1.0, "matrix-wide mean deviation {total_mean:.2}");
    assert!(worst_well < 8.0, "worst single-well deviation {worst_well:.2}");
}

#[test]
fn lowres_profile_degrades_gracefully_not_catastrophically() {
    let detector = Detector::default();
    for i in 0..4u64 {
        let mut scene = scenario(i);
        scene.camera = CameraGeometry::for_fidelity(Fidelity::Lowres);
        let mut frame = ImageRgb8::new(1, 1, Default::default());
        render_tiled(&scene, 0xA5 ^ i, &mut frame, 32, 1);
        let reading = detector
            .detect(&frame)
            .unwrap_or_else(|e| panic!("scenario {i}: lowres frame undetectable: {e}"));
        // Accuracy loosens at quarter resolution but stays usable: compare
        // against scene ground truth.
        let mut mean = 0.0f64;
        let mut n = 0usize;
        for (idx, truth) in scene.well_colors.iter().enumerate() {
            let Some(truth) = truth else { continue };
            let well = reading.well(idx / 12, idx % 12).unwrap();
            mean += well.color.distance(truth.to_srgb());
            n += 1;
        }
        mean /= n as f64;
        assert!(mean < 25.0, "scenario {i}: lowres mean truth error {mean:.1}");
    }
}
