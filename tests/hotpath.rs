//! The inner-loop optimizations must be invisible in the results: campaign
//! reports are bit-identical to the pre-optimization code path and to
//! themselves at any worker-thread count.

use sdl_lab::core::{AppConfig, CampaignReport, CampaignRunner, ColorPickerApp, ScenarioSpec};
use sdl_lab::solvers::{BayesSolver, SolverKind};

fn bayes_config(seed: u64) -> AppConfig {
    AppConfig {
        solver: SolverKind::Bayesian,
        sample_budget: 24,
        batch: 4,
        seed,
        publish_images: false,
        ..AppConfig::default()
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    (0..6).map(|i| ScenarioSpec::new(format!("bo-{i}"), bayes_config(100 + i))).collect()
}

fn run_at(threads: usize) -> CampaignReport {
    CampaignRunner::new().threads(threads).run(scenarios())
}

#[test]
fn campaign_reports_are_bit_identical_across_thread_counts() {
    let one = run_at(1);
    let two = run_at(2);
    let eight = run_at(8);
    assert!(!one.fingerprint().is_empty());
    assert_eq!(one.fingerprint(), two.fingerprint());
    assert_eq!(one.fingerprint(), eight.fingerprint());
    assert_eq!(one.solver_fallbacks(), 0, "healthy campaigns never fall back");
}

#[test]
fn optimized_loop_matches_pre_optimization_path_bitwise() {
    // The incremental surrogate + batched EI + buffer-reuse hot path must
    // reproduce the from-scratch refit path sample for sample, bit for bit.
    let optimized = ColorPickerApp::new(bayes_config(7)).unwrap().run().unwrap();

    let mut baseline_app = ColorPickerApp::new(bayes_config(7)).unwrap();
    let mut reference = BayesSolver::new(4);
    reference.incremental = false;
    baseline_app.replace_solver(Box::new(reference));
    let baseline = baseline_app.run().unwrap();

    assert_eq!(optimized.best_score.to_bits(), baseline.best_score.to_bits());
    assert_eq!(optimized.best_ratios, baseline.best_ratios);
    assert_eq!(optimized.samples_measured, baseline.samples_measured);
    assert_eq!(optimized.duration, baseline.duration);
    assert_eq!(optimized.trajectory.len(), baseline.trajectory.len());
    for (a, b) in optimized.trajectory.iter().zip(&baseline.trajectory) {
        assert_eq!(a.sample, b.sample);
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "sample {}", a.sample);
        assert_eq!(a.best.to_bits(), b.best.to_bits(), "sample {}", a.sample);
    }
    assert_eq!(optimized.solver_fallbacks, 0);
    assert_eq!(baseline.solver_fallbacks, 0);
}
