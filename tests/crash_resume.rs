//! Process-level crash recovery: SIGKILL an `sdl-lab campaign` driver
//! mid-campaign, resume from its event log, and assert the merged report
//! is bit-identical to an uninterrupted single-process run — with no
//! scenario executed twice.

use proptest::prelude::*;
use sdl_lab::core::chaos::{apply_corruption, corruption_schedule};
use sdl_lab::core::{CampaignConfig, CampaignEvent, CampaignRunner, EventLog};
use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const CAMPAIGN_YAML: &str = "name: crash-resume\n\
                             samples: 10\n\
                             batch: 2\n\
                             seed: 91\n\
                             publish_images: false\n\
                             solvers: [genetic, random, bayesian]\n\
                             seeds: 3\n";

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdl-crash-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// How many scenarios the log records as finished so far. Reads the raw
/// file (the writer is another process), tolerating a torn last line.
fn finished_in(log: &PathBuf) -> usize {
    let Ok(mut f) = std::fs::File::open(log) else { return 0 };
    let mut text = String::new();
    let _ = f.read_to_string(&mut text);
    text.matches("scenario_finished").count()
}

#[test]
fn sigkilled_campaign_resumes_bit_identically() {
    let config = CampaignConfig::from_yaml(CAMPAIGN_YAML).expect("campaign yaml parses");
    let golden = CampaignRunner::new().threads(1).run(config.scenarios());
    let total = config.scenarios().len();

    let dir = workdir();
    let yaml_path = dir.join("campaign.yaml");
    let log_path = dir.join("campaign.events");
    std::fs::write(&yaml_path, CAMPAIGN_YAML).unwrap();

    // Drive the same campaign in a separate process, appending to the log.
    let bin = env!("CARGO_BIN_EXE_sdl-lab");
    let mut child = Command::new(bin)
        .args(["campaign", "--config"])
        .arg(&yaml_path)
        .args(["--threads", "1", "--event-log"])
        .arg(&log_path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sdl-lab campaign");

    // SIGKILL it as soon as at least two scenarios have landed in the log
    // (so the resume has both completed work to replay and remaining work
    // to re-drive). kill() is SIGKILL on unix: no flushing, no cleanup.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed = false;
    while Instant::now() < deadline {
        if finished_in(&log_path) >= 2 {
            child.kill().expect("SIGKILL the driver");
            killed = true;
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break; // Finished before we could kill it — asserted below.
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.wait();
    assert!(killed, "campaign finished before two scenarios hit the log; grow the matrix");

    // Resume from the torn log. The recovered report must be bit-identical
    // to the uninterrupted golden run.
    let (report, stats) =
        CampaignRunner::new().threads(1).resume(&log_path).expect("resume succeeds");
    assert_eq!(
        golden.fingerprint(),
        report.fingerprint(),
        "resumed campaign diverged from the golden run (replayed {}, redriven {})",
        stats.replayed,
        stats.redriven
    );
    assert!(stats.replayed >= 2, "the two logged scenarios must replay, not re-run: {stats:?}");
    assert_eq!(stats.replayed + stats.redriven, total, "{stats:?}");

    // No scenario ran twice: the final log holds exactly one terminal
    // event per scenario, and nothing that finished before the crash was
    // started again after the resume marker.
    let (events, _) = EventLog::read(&log_path).expect("final log reads");
    let resume_seq = events
        .iter()
        .find(|r| matches!(r.event, CampaignEvent::CampaignResumed { .. }))
        .expect("resume marker present")
        .seq;
    let mut terminals = std::collections::HashMap::new();
    let mut restarted = Vec::new();
    for rec in &events {
        match &rec.event {
            CampaignEvent::ScenarioFinished { index, .. }
            | CampaignEvent::ScenarioFailed { index, .. } => {
                *terminals.entry(*index).or_insert(0u32) += 1;
            }
            CampaignEvent::ScenarioStarted { index, .. } if rec.seq > resume_seq => {
                restarted.push(*index);
            }
            _ => {}
        }
    }
    assert_eq!(terminals.len(), total, "every scenario must reach a terminal event");
    assert!(terminals.values().all(|&n| n == 1), "a scenario ran twice: {terminals:?}");
    let finished_before: Vec<usize> = events
        .iter()
        .filter(|r| r.seq < resume_seq)
        .filter_map(|r| match &r.event {
            CampaignEvent::ScenarioFinished { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    for index in &restarted {
        assert!(
            !finished_before.contains(index),
            "scenario {index} finished before the crash but was re-driven after the resume"
        );
    }

    // Resuming a completed log is refused — the campaign is closed.
    assert!(CampaignRunner::new().resume(&log_path).is_err(), "closed log must refuse resume");
    let _ = std::fs::remove_dir_all(&dir);
}

const FUZZ_YAML: &str = "name: log-fuzz\n\
                         samples: 6\n\
                         batch: 2\n\
                         seed: 53\n\
                         publish_images: false\n\
                         solvers: [genetic, random]\n\
                         seeds: 2\n";

/// One real, completed campaign event log plus its golden fingerprint —
/// built once, then corrupted afresh for every property case.
fn fuzz_fixture() -> &'static (PathBuf, Vec<u8>, String) {
    static FIXTURE: OnceLock<(PathBuf, Vec<u8>, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("sdl-log-fuzz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("golden.events");
        let log = Arc::new(EventLog::create(&log_path).unwrap());
        let config = CampaignConfig::from_yaml(FUZZ_YAML).unwrap();
        let report = CampaignRunner::new()
            .threads(1)
            .with_events(Arc::clone(&log))
            .name(&config.name)
            .run(config.scenarios());
        log.sync();
        let bytes = std::fs::read(&log_path).unwrap();
        assert!(bytes.len() > 200, "fixture log suspiciously small: {} bytes", bytes.len());
        (dir, bytes, report.fingerprint())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any corruption of a real campaign log — torn tails, random bit
    /// flips, whole-event truncations, or several stacked — recovers to a
    /// checksum-verified clean prefix of the original bytes, and resuming
    /// from that prefix reproduces the golden fingerprint bit-identically
    /// (or is refused cleanly when nothing usable is left; never a panic).
    #[test]
    fn corrupted_log_recovers_cleanly_and_resumes_bit_identically(
        seed in 0u64..u64::MAX,
        count in 0usize..4,
    ) {
        let (dir, original, golden) = fuzz_fixture();
        let mut bytes = original.clone();
        for c in corruption_schedule(seed, &bytes, count) {
            bytes = apply_corruption(&bytes, c);
        }
        let copy = dir.join(format!("case-{seed}-{count}.events"));
        std::fs::write(&copy, &bytes).unwrap();

        // The scan is total: any damage truncates to a clean prefix of the
        // undamaged original, never an error or a panic.
        let (events, report) = EventLog::read(&copy).expect("read is total");
        assert!(report.valid_bytes as usize <= original.len());
        assert_eq!(
            &bytes[..report.valid_bytes as usize],
            &original[..report.valid_bytes as usize],
            "accepted prefix must be undamaged original bytes"
        );
        for (i, rec) in events.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1, "accepted events must stay contiguous");
        }

        // A usable prefix resumes to the golden fingerprint bit-identically;
        // a useless (no campaign_opened) or complete one is refused cleanly.
        let closed = matches!(
            events.last().map(|r| &r.event),
            Some(CampaignEvent::CampaignClosed { .. })
        );
        let opened =
            events.iter().any(|r| matches!(r.event, CampaignEvent::CampaignOpened { .. }));
        let resumed = CampaignRunner::new().threads(1).resume(&copy);
        if !opened || closed {
            assert!(resumed.is_err(), "resume must refuse (opened={opened}, closed={closed})");
        } else {
            let (report, stats) = resumed.expect("resume from a clean prefix");
            assert_eq!(
                report.fingerprint(),
                *golden,
                "resume diverged (replayed {}, redriven {})",
                stats.replayed,
                stats.redriven
            );
        }
        let _ = std::fs::remove_file(&copy);
    }
}
