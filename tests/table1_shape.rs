//! The headline reproduction check: a full B = 1, N = 128 run must land on
//! the shape of the paper's Table 1 (within calibration tolerances — the
//! substrate is a simulator, so we check bands, not identity).

use sdl_lab::core::{run_one, AppConfig};

#[test]
fn b1_run_reproduces_table1_bands() {
    let config =
        AppConfig { sample_budget: 128, batch: 1, publish_images: false, ..AppConfig::default() };
    let out = run_one(config).expect("B=1 run completes");
    let m = &out.metrics;

    // Paper: 8 h 12 m total / TWH (no faults injected, so TWH = total).
    let total_h = m.total.as_secs_f64() / 3600.0;
    assert!((7.9..8.6).contains(&total_h), "total {total_h} h");
    assert_eq!(m.twh, m.total);

    // Paper: 387 robotic commands; our plate-change bookkeeping gives ~398.
    assert!((380..=420).contains(&m.ccwh), "CCWH {}", m.ccwh);
    assert_eq!(m.human_interventions, 0);

    // Paper: 5 h 10 m synthesis, 3 h 02 m transfer, 63% synthesis share.
    let synth_h = m.synthesis.as_secs_f64() / 3600.0;
    let transfer_h = m.transfer.as_secs_f64() / 3600.0;
    assert!((4.9..5.4).contains(&synth_h), "synthesis {synth_h} h");
    assert!((2.8..3.2).contains(&transfer_h), "transfer {transfer_h} h");
    assert!((0.58..0.68).contains(&m.synthesis_fraction()), "share {}", m.synthesis_fraction());

    // Paper: 128 colors at ~4 min each; uploads every ~3 m 48 s.
    assert_eq!(m.colors_mixed, 128);
    let per_color_min = m.time_per_color.as_minutes();
    assert!((3.5..4.3).contains(&per_color_min), "per color {per_color_min} min");

    // The pf400 picks and places "precisely twice per time period": 2 moves
    // per iteration plus plate logistics.
    let transfers = out.counters.robotic_completed;
    assert!(transfers >= 128 * 3, "robotic commands {transfers}");

    // 128 data uploads (one per sample) plus the experiment record.
    assert_eq!(out.flow_stats.published, 129);

    // Figure-4 shape: the best score must descend well below the initial
    // random guesses and end in the single digits.
    let first_best = out.trajectory.first().unwrap().best;
    assert!(first_best > 20.0, "first sample unusually good: {first_best}");
    assert!(out.best_score < 12.0, "B=1 final best {}", out.best_score);
}
