//! Cross-crate solver quality checks on the real (simulated) objective —
//! dye chemistry, camera noise and all.
//!
//! Note on budgets: the paper's GA re-measures its elite every generation,
//! so it only separates from random search once the budget is large enough
//! to amortize that cost (the full story is in the `solver_compare` bench).

use sdl_lab::core::{run_one, run_sweep, solver_sweep, AppConfig};
use sdl_lab::solvers::SolverKind;

#[test]
fn informed_solvers_beat_random_at_paper_scale() {
    let base =
        AppConfig { sample_budget: 64, batch: 4, publish_images: false, ..AppConfig::default() };
    let seeds = [5u64, 9];
    let results = run_sweep(solver_sweep(
        &base,
        &[SolverKind::Genetic, SolverKind::Bayesian, SolverKind::Random],
        &seeds,
    ));
    let mean = |name: &str| -> f64 {
        let v: Vec<f64> = results
            .iter()
            .filter(|(l, _)| l.starts_with(name))
            .map(|(l, r)| r.as_ref().unwrap_or_else(|e| panic!("{l}: {e}")).best_score)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let ga = mean("genetic");
    let bo = mean("bayesian");
    let random = mean("random");
    // Both informed solvers converge into the noise floor region; random
    // search stalls at its best-of-N draw.
    assert!(ga < random, "GA {ga:.2} vs random {random:.2}");
    assert!(bo < random, "BO {bo:.2} vs random {random:.2}");
    assert!(ga < 20.0, "GA failed to converge: {ga:.2}");
    assert!(bo < 20.0, "BO failed to converge: {bo:.2}");
}

#[test]
fn analytic_oracle_is_the_skyline() {
    let config = AppConfig {
        sample_budget: 8,
        batch: 4,
        solver: SolverKind::Analytic,
        publish_images: false,
        ..AppConfig::default()
    };
    let oracle = run_one(config).expect("oracle run");
    // The oracle inverts the true forward model; only sensor noise and the
    // camera's systematic error separate it from zero.
    assert!(oracle.best_score < 12.0, "oracle best {}", oracle.best_score);
}
