//! Campaign-engine integration: bit-identical results at any worker-thread
//! count, an ordered portal stream, and the declarative scenario matrix.

use proptest::prelude::*;
use sdl_lab::color::{MixKind, Objective, Rgb8};
use sdl_lab::conf::ValueExt;
use sdl_lab::core::{
    AppConfig, BackendSpec, CampaignConfig, CampaignRunner, RunMode, ScenarioSpec,
};
use sdl_lab::desim::{FaultPlan, FaultRates};
use sdl_lab::solvers::SolverKind;
use sdl_lab::vision::{DriftSpec, Fidelity};

/// A 16-scenario mixed campaign: four solvers x seeds, two batch sizes, a
/// faulty scenario and two multi-OT2 scenarios.
fn mixed_campaign() -> Vec<ScenarioSpec> {
    let mut scenarios = Vec::new();
    let solvers = [SolverKind::Genetic, SolverKind::Bayesian, SolverKind::Random, SolverKind::Grid];
    for (i, &solver) in solvers.iter().enumerate() {
        for seed in 0..3u64 {
            let config = AppConfig {
                sample_budget: 4,
                batch: if seed % 2 == 0 { 2 } else { 4 },
                solver,
                seed: 100 + 17 * i as u64 + seed,
                publish_images: false,
                ..AppConfig::default()
            };
            scenarios.push(ScenarioSpec::new(format!("{}/s{seed}", solver.name()), config));
        }
    }
    let mut faulty = AppConfig {
        sample_budget: 4,
        batch: 2,
        seed: 900,
        publish_images: false,
        ..AppConfig::default()
    };
    faulty.faults = FaultPlan::uniform(FaultRates::new(0.1, 0.05));
    scenarios.push(ScenarioSpec::new("faulty", faulty));

    let multi_base = AppConfig {
        sample_budget: 6,
        batch: 2,
        seed: 901,
        publish_images: false,
        ..AppConfig::default()
    };
    scenarios.push(ScenarioSpec::multi_ot2("ot2x2", multi_base.clone(), 2));
    scenarios.push(ScenarioSpec::multi_ot2("ot2x3", multi_base, 3));

    let threshold = AppConfig {
        sample_budget: 64,
        batch: 4,
        seed: 902,
        match_threshold: Some(25.0),
        publish_images: false,
        ..AppConfig::default()
    };
    scenarios.push(ScenarioSpec::new("early-stop", threshold));
    scenarios
}

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    let scenarios = mixed_campaign();
    assert_eq!(scenarios.len(), 16);

    let baseline = CampaignRunner::new().threads(1).run(scenarios.clone());
    let two = CampaignRunner::new().threads(2).run(scenarios.clone());
    let eight = CampaignRunner::new().threads(8).run(scenarios);

    // The fingerprint encodes every score's IEEE bit pattern, every
    // duration microsecond and every trajectory point.
    let expected = baseline.fingerprint();
    assert!(!expected.is_empty());
    assert_eq!(expected, two.fingerprint(), "2 threads diverged from 1");
    assert_eq!(expected, eight.fingerprint(), "8 threads diverged from 1");

    // The streamed portal records are identical and in input order too.
    let render = |report: &sdl_lab::core::CampaignReport| -> Vec<String> {
        report.portal.find("kind", "campaign_scenario").iter().map(sdl_lab::conf::to_json).collect()
    };
    assert_eq!(render(&baseline), render(&two));
    assert_eq!(render(&baseline), render(&eight));
}

#[test]
fn campaign_streams_ordered_records_into_the_portal() {
    let report = CampaignRunner::new().threads(4).run(mixed_campaign());
    let records = report.portal.find("kind", "campaign_scenario");
    assert_eq!(records.len(), 16);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.opt_i64("index"), Some(i as i64));
        assert!(r.opt_f64("best_score").is_some(), "record {i} lacks a score");
    }
    let campaign = report.portal.find("kind", "campaign");
    assert_eq!(campaign.len(), 1);
    assert_eq!(campaign[0].opt_i64("scenarios"), Some(16));
    assert_eq!(campaign[0].opt_i64("failed"), Some(0));
}

#[test]
fn declarative_matrix_runs_end_to_end() {
    let config = CampaignConfig::from_yaml(
        "name: cli-style\nsamples: 4\nbatch: 2\nseed: 7\nsolvers: [genetic, random]\nseeds: 2\n",
    )
    .expect("campaign config parses");
    let scenarios = config.scenarios();
    assert_eq!(scenarios.len(), 4);
    let report = CampaignRunner::new().threads(2).run(scenarios);
    for (label, outcome) in report.expect_all() {
        assert_eq!(outcome.samples_measured(), 4, "{label}");
    }
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let solver = prop_oneof![
        Just(SolverKind::Genetic),
        Just(SolverKind::Bayesian),
        Just(SolverKind::Random),
        Just(SolverKind::Grid),
        Just(SolverKind::Analytic),
        Just(SolverKind::Annealing),
    ];
    let objective = prop_oneof![
        Just(Objective::Rgb),
        Just(Objective::Cie76),
        Just(Objective::Cie94),
        Just(Objective::Ciede2000),
        Just(Objective::Cam16Ucs),
    ];
    let mix = prop_oneof![
        Just(MixKind::BeerLambert),
        Just(MixKind::KubelkaMunk),
        Just(MixKind::Linear),
        Just(MixKind::Spectral),
    ];
    (
        (
            "[a-z][a-z0-9 _.-]{0,18}",
            solver,
            objective,
            mix,
            any::<u64>(),
            1u32..512,
            1u32..96,
            (0u8..=255, 0u8..=255, 0u8..=255),
        ),
        (
            0.0..=1.0f64,
            0.0..=1.0f64,
            1usize..5,
            any::<bool>(),
            any::<bool>(),
            0.1..600.0f64,
            proptest::collection::vec(1.0..80.0f64, 0..2),
            prop_oneof![
                Just(BackendSpec::Sim),
                "[a-z0-9.:-]{1,20}".prop_map(BackendSpec::Remote),
                "[a-z0-9._/-]{1,20}".prop_map(BackendSpec::Replay),
            ],
        ),
        (
            prop_oneof![Just(Fidelity::Full), Just(Fidelity::Fast), Just(Fidelity::Lowres)],
            prop_oneof![
                Just(None),
                Just(Some(DriftSpec::WB)),
                Just(Some(DriftSpec::GAIN)),
                Just(Some(DriftSpec::WB_GAIN)),
            ],
            prop_oneof![Just(None), (0u8..=255, 0u8..=255, 0u8..=255).prop_map(Some)],
            proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 0..3),
        ),
    )
        .prop_map(
            |(
                (label, solver, objective, mix, seed, samples, batch, (r, g, b)),
                (f_rec, f_act, n_ot2, publish, flat, compute, threshold, backend),
                (fidelity, drift, target_to, target_set),
            )| {
                let mut config = AppConfig {
                    sample_budget: samples,
                    batch,
                    solver,
                    objective,
                    mix,
                    seed,
                    target: Rgb8::new(r, g, b),
                    target_to: target_to.map(|(r, g, b)| Rgb8::new(r, g, b)),
                    target_set: target_set
                        .into_iter()
                        .map(|(r, g, b)| Rgb8::new(r, g, b))
                        .collect(),
                    drift,
                    publish_images: publish,
                    flat_field: flat,
                    compute_seconds: compute,
                    match_threshold: threshold.first().copied(),
                    fidelity,
                    ..AppConfig::default()
                };
                if f_rec > 0.0 || f_act > 0.0 {
                    config.faults = FaultPlan::uniform(FaultRates::new(f_rec, f_act));
                }
                let spec = if n_ot2 > 1 {
                    ScenarioSpec::multi_ot2(label, config, n_ot2)
                } else {
                    ScenarioSpec::new(label, config)
                };
                spec.with_backend(backend)
            },
        )
}

proptest! {
    /// Every scenario spec survives the declarative sdl-conf round trip,
    /// field for field — including a serialization to YAML text and back.
    #[test]
    fn scenario_spec_roundtrips_through_conf(spec in arb_spec()) {
        let value = spec.to_value();
        let back = ScenarioSpec::from_value(&value).expect("decodes");
        assert_specs_match(&spec, &back);

        // And through the textual YAML form.
        let yaml = sdl_lab::conf::to_yaml(&value);
        let reparsed = ScenarioSpec::from_yaml(&yaml)
            .unwrap_or_else(|e| panic!("yaml reparse failed: {e}\n{yaml}"));
        assert_specs_match(&spec, &reparsed);
    }
}

fn assert_specs_match(a: &ScenarioSpec, b: &ScenarioSpec) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.backend, b.backend);
    assert_eq!(a.config.custom_solver, b.config.custom_solver);
    let (ca, cb) = (&a.config, &b.config);
    assert_eq!(ca.experiment_name, cb.experiment_name);
    assert_eq!(ca.target, cb.target);
    assert_eq!(ca.sample_budget, cb.sample_budget);
    assert_eq!(ca.batch, cb.batch);
    assert_eq!(ca.solver, cb.solver);
    assert_eq!(ca.objective, cb.objective);
    assert_eq!(ca.target_set, cb.target_set);
    assert_eq!(ca.target_to, cb.target_to);
    assert_eq!(ca.drift, cb.drift);
    assert_eq!(ca.mix, cb.mix);
    assert_eq!(ca.seed, cb.seed);
    assert_eq!(ca.match_threshold, cb.match_threshold);
    assert_eq!(ca.publish_images, cb.publish_images);
    assert_eq!(ca.flat_field, cb.flat_field);
    assert_eq!(ca.fidelity, cb.fidelity);
    assert_eq!(ca.compute_seconds, cb.compute_seconds);
    assert_eq!(ca.dyes.len(), cb.dyes.len());
    assert_eq!(ca.workcell_yaml, cb.workcell_yaml);
    for module in ["ot2", "pf400"] {
        assert_eq!(ca.faults.rates_for(module), cb.faults.rates_for(module));
    }
}

#[test]
fn multi_ot2_mode_roundtrips_as_single_when_one_handler() {
    let spec = ScenarioSpec::new("one", AppConfig::default());
    let back = ScenarioSpec::from_value(&spec.to_value()).unwrap();
    assert_eq!(back.mode, RunMode::Single);
}
