//! Process-level chaos test: fan a campaign over real `sdl-lab serve`
//! worker processes, kill one mid-campaign, and assert the merged
//! fingerprint is still bit-identical to the single-process golden run.

use sdl_lab::core::{AppConfig, CampaignRunner, CampaignScheduler, RetryPolicy, ScenarioSpec};
use sdl_lab::portal_server::client;
use sdl_lab::solvers::SolverKind;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Worker {
    child: Child,
    addr: SocketAddr,
}

impl Worker {
    /// Spawn `sdl-lab serve` on an ephemeral port and parse the banner.
    fn spawn() -> Worker {
        let bin = env!("CARGO_BIN_EXE_sdl-lab");
        let mut child = Command::new(bin)
            .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sdl-lab serve");
        let stdout = child.stdout.take().unwrap();
        let mut banner = String::new();
        BufReader::new(stdout).read_line(&mut banner).unwrap();
        let addr: SocketAddr = banner
            .trim()
            .strip_prefix("serving on http://")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .parse()
            .unwrap();
        Worker { child, addr }
    }

    /// Sessions this worker has opened so far, per its own /metrics.
    fn sessions_opened(&self) -> u64 {
        let Ok(resp) = client::get(self.addr, "/metrics") else { return 0 };
        resp.text()
            .lines()
            .find(|l| l.starts_with("sdl_lab_sessions_opened_total"))
            .and_then(|l| l.split_ascii_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn config(solver: SolverKind, samples: u32, batch: u32, seed: u64) -> AppConfig {
    AppConfig {
        solver,
        sample_budget: samples,
        batch,
        seed,
        publish_images: false,
        ..AppConfig::default()
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    (0..10)
        .map(|i| {
            let solver = [SolverKind::Genetic, SolverKind::Random, SolverKind::Bayesian][i % 3];
            ScenarioSpec::new(format!("s{i}"), config(solver, 8, 2, 300 + i as u64))
        })
        .collect()
}

#[test]
fn killing_a_worker_mid_campaign_preserves_the_fingerprint() {
    let golden = CampaignRunner::new().threads(2).run(scenarios());

    let mut workers = vec![Worker::spawn(), Worker::spawn(), Worker::spawn()];
    let urls: Vec<String> = workers.iter().map(|w| w.addr.to_string()).collect();
    let scheduler = CampaignScheduler::new(urls)
        .shard_size(1)
        .retry(RetryPolicy {
            connect_timeout: Duration::from_millis(500),
            retries: 1,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            ..RetryPolicy::default()
        })
        .probe_budget(2);

    // Run the campaign on a thread; from here, wait until some worker has
    // actually opened a session, then kill it while its shards are live.
    let run = std::thread::spawn(move || scheduler.run(scenarios()));
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut killed = false;
    while Instant::now() < deadline {
        if let Some(w) = workers.iter_mut().find(|w| w.sessions_opened() >= 1) {
            let _ = w.child.kill();
            let _ = w.child.wait();
            killed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let (report, sched) = run.join().expect("scheduler thread panicked");
    assert!(killed, "no worker ever opened a session");

    assert_eq!(
        golden.fingerprint(),
        report.fingerprint(),
        "worker death must not change the merged campaign: {sched:?}"
    );
    assert!(report.results.iter().all(|r| r.outcome.is_ok()), "no scenario may fail");
    assert!(sched.total_evictions() >= 1, "the killed worker was never evicted: {sched:?}");
    let done: u64 =
        sched.workers.iter().map(|w| w.completed).sum::<u64>() + sched.fallback + sched.local;
    assert_eq!(done, scenarios().len() as u64);
    drop(workers);
}
