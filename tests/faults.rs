//! Fault injection across the whole stack: the loop keeps producing science
//! while the reliability metrics degrade.

use sdl_lab::core::{run_one, AppConfig};
use sdl_lab::desim::{FaultPlan, FaultRates};

fn faulty(reception: f64, action: f64) -> AppConfig {
    AppConfig {
        sample_budget: 24,
        batch: 2,
        faults: FaultPlan::uniform(FaultRates::new(reception, action)),
        publish_images: false,
        ..AppConfig::default()
    }
}

#[test]
fn moderate_faults_are_absorbed_by_retries() {
    let clean = run_one(faulty(0.0, 0.0)).expect("clean run");
    let noisy = run_one(faulty(0.05, 0.02)).expect("noisy run");
    assert_eq!(noisy.samples_measured, 24, "science still happens");
    assert!(noisy.counters.reception_faults + noisy.counters.action_faults > 0);
    assert!(
        noisy.duration > clean.duration,
        "faults must cost time: {} vs {}",
        noisy.duration,
        clean.duration
    );
}

#[test]
fn heavy_faults_summon_humans_and_reset_ccwh() {
    // 40% reception failures: three consecutive drops are common, so the
    // simulated operator gets involved and the CCWH streak fragments.
    let out = run_one(faulty(0.4, 0.0)).expect("run survives heavy faults");
    assert_eq!(out.samples_measured, 24);
    assert!(out.counters.human_interventions > 0, "expected interventions");
    assert!(
        out.metrics.ccwh < out.counters.robotic_completed,
        "CCWH {} must be a streak, not the total {}",
        out.metrics.ccwh,
        out.counters.robotic_completed
    );
    assert!(out.metrics.twh < out.metrics.total, "TWH shrinks once humans appear");
}

#[test]
fn fault_runs_are_reproducible() {
    let a = run_one(faulty(0.2, 0.1)).expect("run a");
    let b = run_one(faulty(0.2, 0.1)).expect("run b");
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.duration, b.duration);
    assert_eq!(a.metrics.ccwh, b.metrics.ccwh);
}
