//! Replayed runs reconstruct real telemetry from the recorded archive.
//!
//! Every published sample carries its batch's lab-clock wall duration
//! (`batch_wall_s`), and each batch's workflow timing log rides on the
//! batch's first sample — so a portal-sourced `ReplayBackend` no longer
//! reports zeroed placeholder metrics: synthesis time reconstructs
//! exactly, robotic-command accounting and CCWH rebuild from the step
//! records, and `real_telemetry` in the capabilities advertises it.

use sdl_lab::core::{AppConfig, Experiment, LabBackend, ReplayBackend, SimBackend};
use sdl_lab::desim::SimDuration;
use sdl_lab::solvers::SolverKind;

fn config() -> AppConfig {
    AppConfig {
        solver: SolverKind::Random,
        sample_budget: 6,
        batch: 2,
        seed: 99,
        publish_images: false,
        ..AppConfig::default()
    }
}

#[test]
fn portal_replay_reconstructs_real_telemetry() {
    // Record a small simulated run.
    let mut session = Experiment::new(config()).unwrap();
    let mut sim = SimBackend::new(&config()).unwrap();
    let outcome = session.run_on(&mut sim).unwrap();
    let portal = outcome.portal;

    // Every sample carries a positive batch wall; the batch's samples
    // agree on it.
    let records = portal.samples(&config().experiment_id());
    assert_eq!(records.len(), 6);
    for r in &records {
        let wall = r.batch_wall_s.expect("sim runs record batch walls");
        assert!(wall > 0.0, "sample {}: wall {wall}", r.sample);
    }
    for pair in records.chunks(2) {
        assert_eq!(pair[0].batch_wall_s, pair[1].batch_wall_s, "batch-mates share one wall");
    }

    // Re-drive the same config+seed through the replay backend.
    let mut replay = ReplayBackend::from_portal(&portal, &config().experiment_id());
    let caps = replay.open().unwrap();
    assert!(caps.real_telemetry, "portal replay should advertise reconstructed telemetry");

    let mut session = Experiment::new(config()).unwrap();
    while let Some(batch) = session.ask(&caps) {
        let result = replay.submit_batch(&batch).unwrap();
        assert!(result.batch_wall > SimDuration::ZERO, "run {}: zero batch wall", batch.run);
        session.tell(&batch, result).unwrap();
    }
    let close = replay.close(session.samples_measured()).unwrap();

    // Synthesis time happens only inside the recorded mixcolor workflows,
    // so it reconstructs exactly; transfer is batch-scoped (plate
    // logistics between batches were never published) so it is a positive
    // lower bound.
    assert_eq!(close.metrics.synthesis, outcome.metrics.synthesis);
    assert!(close.metrics.transfer > SimDuration::ZERO);
    assert!(close.metrics.transfer <= outcome.metrics.transfer);
    assert!(close.metrics.robotic_commands > 0);
    assert_eq!(close.metrics.human_interventions, 0);
    // The replay clock ends at the last recorded measurement, inside the
    // simulated run's full span.
    assert!(close.duration > SimDuration::ZERO);
    assert!(close.duration <= outcome.duration);
    assert_eq!(close.metrics.twh, close.metrics.total, "faultless run: TWH spans the whole run");
}

#[test]
fn partially_recovered_logs_fall_back_to_the_zeroed_shape() {
    // A mixed-version archive where one batch lost its timing log must
    // not produce half-reconstructed telemetry: metrics and counters
    // both fall back to the zeroed placeholders, and the caps say so.
    use sdl_lab::datapub::AcdcPortal;
    let mut session = Experiment::new(config()).unwrap();
    let mut sim = SimBackend::new(&config()).unwrap();
    let outcome = session.run_on(&mut sim).unwrap();

    let stripped = AcdcPortal::new();
    let mut dropped = false;
    for mut v in outcome.portal.search(|_| true) {
        if !dropped && v.get("timing").is_some() {
            v.set("timing", sdl_lab::conf::Value::Null);
            dropped = true;
        }
        stripped.ingest(v);
    }
    assert!(dropped, "the run should have recorded at least one timing log");

    let mut replay = ReplayBackend::from_portal(&stripped, &config().experiment_id());
    let caps = replay.open().unwrap();
    assert!(!caps.real_telemetry);
    let close = replay.close(6).unwrap();
    assert_eq!(close.metrics.synthesis, SimDuration::ZERO);
    assert_eq!(close.metrics.robotic_commands, 0);
    assert_eq!(close.counters.completed, 0);
}

#[test]
fn bare_record_replay_still_reports_placeholder_telemetry() {
    // Without the portal's raw records (no timing logs), replay falls back
    // to the historical zeroed shape and says so.
    let mut session = Experiment::new(config()).unwrap();
    let mut sim = SimBackend::new(&config()).unwrap();
    let outcome = session.run_on(&mut sim).unwrap();
    let records = outcome.portal.samples(&config().experiment_id());

    let mut replay = ReplayBackend::from_records(records);
    let caps = replay.open().unwrap();
    assert!(!caps.real_telemetry);
    let close = replay.close(6).unwrap();
    assert_eq!(close.metrics.synthesis, SimDuration::ZERO);
    assert_eq!(close.metrics.robotic_commands, 0);
}
