//! Root integration: the §4 future-work experiment across crate boundaries.

use sdl_lab::core::{run_multi_ot2, run_one, AppConfig};

#[test]
fn two_handlers_cut_twh_without_losing_science() {
    let base =
        AppConfig { sample_budget: 24, batch: 2, publish_images: false, ..AppConfig::default() };
    let single = run_one(base.clone()).expect("single-flow app");
    let dual = run_multi_ot2(&base, 2).expect("dual-handler run");

    assert_eq!(dual.samples_measured, 24);
    // The paper's trade: lower TWH...
    assert!(
        dual.duration.as_secs_f64() < single.duration.as_secs_f64() * 0.8,
        "dual {} vs single {}",
        dual.duration,
        single.duration
    );
    // ...for at least as many commands (CCWH numerator).
    assert!(dual.robotic_commands >= single.counters.robotic_completed);
    // Science quality is in the same band (same solver, shared history).
    assert!(dual.best_score < 60.0);
}
