//! Overload-resilience integration tests: a live server past its
//! connection cap and tenant quotas must shed with `429`/`503` +
//! `Retry-After` (never hang, never grow unboundedly), keep-alive
//! connections must be finite, drain must lose zero accepted batches,
//! and a sharded campaign under shedding must stay bit-identical to the
//! single-process golden run.

use sdl_lab::core::{
    AppConfig, CampaignRunner, CampaignScheduler, ChaosPolicy, RetryPolicy, ScenarioSpec,
};
use sdl_lab::datapub::{AcdcPortal, BlobStore};
use sdl_lab::portal_server::client::{self, HttpClient};
use sdl_lab::portal_server::{
    spawn, LabHost, PortalServer, QuotaPolicy, ServerConfig, ServerHandle,
};
use sdl_lab::solvers::SolverKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn lab_server(lab: LabHost, config: ServerConfig) -> ServerHandle {
    let portal = Arc::new(AcdcPortal::new());
    let store = Arc::new(BlobStore::in_memory());
    let server = PortalServer::new(portal, store).with_lab(Arc::new(lab));
    spawn(server, &config).expect("bind overload test server")
}

fn ephemeral() -> ServerConfig {
    ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() }
}

const CREATE: &str = r#"{"samples": 4, "batch": 2, "publish_images": false}"#;
const BATCH: &str = r#"{"run": 1, "ratios": [[0.5, 0.25, 0.0, 0.1], [0.0, 0.0, 0.0, 1.0]]}"#;

#[test]
fn quota_sheds_429_with_retry_after_over_real_sockets() {
    // Burst of one token on a slow refill: the second session open must be
    // shed immediately (not queued) with a Retry-After hint.
    let handle = lab_server(
        LabHost::new().with_quota(QuotaPolicy { rate: 0.5, burst: 1.0 }),
        ephemeral(),
    );
    let addr = handle.addr();

    let mut c = HttpClient::connect(addr).unwrap();
    let first = c.post("/v1/experiments", CREATE).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());

    let started = Instant::now();
    let second = c.post("/v1/experiments", CREATE).unwrap();
    assert_eq!(second.status, 429, "{}", second.text());
    let hint: u64 = second.header("retry-after").expect("shed carries Retry-After").parse().unwrap();
    assert!(hint >= 1);
    assert!(started.elapsed() < Duration::from_secs(2), "sheds answer immediately, never queue");

    let metrics = client::get(addr, "/metrics").unwrap().text();
    assert!(metrics.contains("sdl_lab_quota_denials_total 1"), "{metrics}");
    let shed_line = metrics.lines().find(|l| l.starts_with("sdl_lab_shed_total")).unwrap();
    assert!(!shed_line.ends_with(" 0"), "{shed_line}");
    handle.shutdown();
}

#[test]
fn connection_cap_sheds_503_and_recovers_when_load_subsides() {
    let handle = lab_server(
        LabHost::new(),
        ServerConfig { max_conns: 1, threads: 2, ..ephemeral() },
    );
    let addr = handle.addr();

    // Occupy the single slot with a keep-alive connection (the completed
    // request guarantees it has been accepted, not just SYN-queued).
    let mut occupant = HttpClient::connect(addr).unwrap();
    assert_eq!(occupant.get("/healthz").unwrap().status, 200);

    // Everything past the cap is answered 503 + Retry-After at accept.
    let over = client::get(addr, "/healthz").unwrap();
    assert_eq!(over.status, 503, "{}", over.text());
    assert!(over.header("retry-after").is_some());

    // Release the slot; the server recovers (the worker notices the close
    // asynchronously, so poll briefly).
    drop(occupant);
    let deadline = Instant::now() + Duration::from_secs(5);
    let recovered = loop {
        let resp = client::get(addr, "/healthz").unwrap();
        if resp.status == 200 {
            break resp;
        }
        assert!(Instant::now() < deadline, "server never recovered from the conn cap");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(recovered.status, 200);

    assert!(handle.server().metrics().conn_sheds() >= 1);
    // The /metrics scrape itself competes for the single slot, so poll
    // until it lands.
    let deadline = Instant::now() + Duration::from_secs(5);
    let metrics = loop {
        let resp = client::get(addr, "/metrics").unwrap();
        if resp.status == 200 {
            break resp.text();
        }
        assert!(Instant::now() < deadline, "metrics scrape kept getting shed");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(metrics.contains("sdl_portal_conn_sheds_total"), "{metrics}");
    assert!(metrics.contains("sdl_portal_conns_active"), "{metrics}");
    handle.shutdown();
}

#[test]
fn keep_alive_connections_are_finite() {
    // max_requests_per_conn=2: the second response says Connection: close
    // and the socket actually closes, so one client can't pin a worker
    // thread forever.
    let handle = lab_server(
        LabHost::new(),
        ServerConfig { max_requests_per_conn: 2, ..ephemeral() },
    );
    let mut c = HttpClient::connect(handle.addr()).unwrap();
    let first = c.get("/healthz").unwrap();
    assert_eq!(first.status, 200);
    assert_ne!(first.header("connection"), Some("close"), "first request keeps the connection");
    let second = c.get("/healthz").unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("connection"), Some("close"));
    assert!(c.get("/healthz").is_err(), "server must close after the per-conn budget");
    handle.shutdown();
}

#[test]
fn drain_finishes_accepted_work_and_refuses_new_sessions() {
    let handle = lab_server(LabHost::new(), ephemeral());
    let addr = handle.addr();

    let mut c = HttpClient::connect(addr).unwrap();
    let created = c.post("/v1/experiments", CREATE).unwrap();
    assert_eq!(created.status, 200, "{}", created.text());
    let session = {
        use sdl_lab::conf::ValueExt;
        sdl_lab::conf::from_json(&created.text()).unwrap().opt_str("session").unwrap().to_string()
    };

    handle.server().begin_drain();

    // New sessions are refused with a Retry-After so schedulers fail over.
    let refused = client::post(addr, "/v1/experiments", CREATE).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.text());
    assert!(refused.header("retry-after").is_some());

    // The accepted session finishes: zero lost batches across the drain.
    // Draining also winds down keep-alive — every response now says
    // Connection: close, so the client reconnects per request.
    let batch = c.post(&format!("/v1/batch?session={session}"), BATCH).unwrap();
    assert_eq!(batch.status, 200, "{}", batch.text());
    assert_eq!(batch.header("connection"), Some("close"));
    let closed =
        client::post(addr, &format!("/v1/close?session={session}"), r#"{"samples": 2}"#).unwrap();
    assert_eq!(closed.status, 200, "{}", closed.text());

    let metrics = client::get(addr, "/metrics").unwrap().text();
    assert!(metrics.contains("sdl_lab_draining 1"), "{metrics}");
    assert!(metrics.contains("sdl_portal_draining 1"), "{metrics}");
    handle.shutdown();
}

#[test]
fn blob_memory_stays_bounded_and_serves_evicted_blobs_from_spill() {
    use bytes::Bytes;
    let dir = std::env::temp_dir().join(format!("sdl-overload-blobs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(BlobStore::with_spill_dir(&dir).with_mem_cap(64));
    let blobs: Vec<_> =
        (0..8u8).map(|i| (store.put(Bytes::from(vec![i; 32])), vec![i; 32])).collect();
    assert!(store.total_bytes() <= 64, "cap violated: {} bytes resident", store.total_bytes());
    assert!(store.evictions() > 0, "cap never evicted");

    let server =
        PortalServer::new(Arc::new(AcdcPortal::new()), Arc::clone(&store));
    let handle = spawn(server, &ephemeral()).unwrap();
    // Every blob — including evicted ones — serves back byte-identical,
    // and serving them never breaks the ceiling.
    for (blob, expected) in &blobs {
        let resp = client::get(handle.addr(), &format!("/blobs/{}", blob.0)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, *expected);
        assert!(store.total_bytes() <= 64);
    }
    assert!(store.reloads() > 0, "evicted blobs must reload from spill");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn config(solver: SolverKind, samples: u32, batch: u32, seed: u64) -> AppConfig {
    AppConfig {
        solver,
        sample_budget: samples,
        batch,
        seed,
        publish_images: false,
        ..AppConfig::default()
    }
}

fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new("g1", config(SolverKind::Genetic, 8, 2, 201)),
        ScenarioSpec::new("b1", config(SolverKind::Bayesian, 6, 3, 202)),
        ScenarioSpec::new("r1", config(SolverKind::Random, 8, 4, 203)),
        ScenarioSpec::new("g2", config(SolverKind::Genetic, 6, 2, 204)),
        ScenarioSpec::new("r2", config(SolverKind::Random, 6, 2, 205)),
        ScenarioSpec::new("b2", config(SolverKind::Bayesian, 8, 2, 206)),
    ]
}

/// Tight backoffs so shed/retry cycles don't wait out real Retry-After
/// seconds: the policy clamps server hints to 4x max_backoff.
fn shed_retry() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(30),
        retries: 8,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    }
}

#[test]
fn scheduler_fingerprint_is_bit_identical_under_shedding() {
    // Workers that deterministically shed ~30% of /v1 requests (chaos
    // `shed=`): the scheduler must throttle and resend — never evict a
    // busy worker, never lose or duplicate a batch — and the merged
    // fingerprint must equal the single-process golden at any pool size.
    let golden = CampaignRunner::new().threads(2).run(scenarios());
    let chaos = ChaosPolicy::parse("seed=9,shed=0.3").unwrap();
    for pool in [1usize, 2, 4] {
        let handles: Vec<ServerHandle> = (0..pool)
            .map(|_| lab_server(LabHost::new().with_chaos(chaos.clone()), ephemeral()))
            .collect();
        let urls: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
        let (report, sched) =
            CampaignScheduler::new(urls).shard_size(1).retry(shed_retry()).run(scenarios());
        assert_eq!(
            golden.fingerprint(),
            report.fingerprint(),
            "fingerprint drift under shedding at pool={pool}"
        );
        assert!(sched.total_sheds() > 0, "shed chaos never fired at pool={pool}: {sched:?}");
        assert_eq!(sched.total_evictions(), 0, "backpressure must throttle, not evict");
        let remote: u64 = sched.workers.iter().map(|w| w.completed).sum();
        assert_eq!(remote, scenarios().len() as u64, "lost or duplicated scenarios");
        for h in handles {
            h.shutdown();
        }
    }
}
