//! Crash recovery: a new control host resumes an interrupted experiment
//! from the records the portal already holds.

use sdl_lab::core::{AppConfig, ColorPickerApp, TerminationReason};

fn config() -> AppConfig {
    AppConfig {
        sample_budget: 18,
        batch: 3,
        publish_images: false,
        seed: 77,
        ..AppConfig::default()
    }
}

#[test]
fn resume_continues_where_the_crash_left_off() {
    // Phase 1: run half the budget, then "crash" (drop the app).
    let half = AppConfig { sample_budget: 9, ..config() };
    let outcome = ColorPickerApp::new(half).expect("phase 1 builds").run().expect("phase 1 runs");
    assert_eq!(outcome.samples_measured, 9);
    let published = outcome.portal.samples(&outcome.experiment_id);
    assert_eq!(published.len(), 9);
    let best_before = outcome.best_score;

    // Phase 2: a fresh app (same config, full budget) restores the history.
    let mut app = ColorPickerApp::new(config()).expect("phase 2 builds");
    app.restore_from_records(&published);
    assert_eq!(app.history().len(), 9);
    let resumed = app.run().expect("phase 2 runs");

    // Only the remaining 9 samples were measured...
    assert_eq!(resumed.termination, TerminationReason::BudgetExhausted);
    assert_eq!(resumed.samples_measured, 18);
    let new_records = resumed.portal.samples(&resumed.experiment_id);
    assert_eq!(new_records.len(), 9, "phase 2 publishes only its own samples");
    assert_eq!(new_records.first().unwrap().sample, 10, "numbering continues");
    // ...and the solver kept its momentum: the final best is at least as
    // good as before the crash.
    assert!(
        resumed.best_score <= best_before + 1e-9,
        "resumed best {} vs pre-crash {}",
        resumed.best_score,
        best_before
    );
    // Trajectory covers all 18 samples (9 restored + 9 new).
    assert_eq!(resumed.trajectory.len(), 18);
    assert_eq!(resumed.trajectory.last().unwrap().sample, 18);
}

#[test]
fn restore_from_empty_records_is_a_noop() {
    let mut app = ColorPickerApp::new(config()).expect("builds");
    app.restore_from_records(&[]);
    assert!(app.history().is_empty());
    let outcome = app.run().expect("runs normally");
    assert_eq!(outcome.samples_measured, 18);
}
