//! Crash recovery: a new control host resumes an interrupted experiment
//! from the records the portal already holds.

use proptest::prelude::*;
use sdl_lab::core::{
    AppConfig, ColorPickerApp, Experiment, ReplayBackend, SimBackend, TerminationReason,
};
use sdl_lab::solvers::SolverKind;

fn config() -> AppConfig {
    AppConfig {
        sample_budget: 18,
        batch: 3,
        publish_images: false,
        seed: 77,
        ..AppConfig::default()
    }
}

#[test]
fn resume_continues_where_the_crash_left_off() {
    // Phase 1: run half the budget, then "crash" (drop the app).
    let half = AppConfig { sample_budget: 9, ..config() };
    let outcome = ColorPickerApp::new(half).expect("phase 1 builds").run().expect("phase 1 runs");
    assert_eq!(outcome.samples_measured, 9);
    let published = outcome.portal.samples(&outcome.experiment_id);
    assert_eq!(published.len(), 9);
    let best_before = outcome.best_score;

    // Phase 2: a fresh app (same config, full budget) restores the history.
    let mut app = ColorPickerApp::new(config()).expect("phase 2 builds");
    app.restore_from_records(&published);
    assert_eq!(app.history().len(), 9);
    let resumed = app.run().expect("phase 2 runs");

    // Only the remaining 9 samples were measured...
    assert_eq!(resumed.termination, TerminationReason::BudgetExhausted);
    assert_eq!(resumed.samples_measured, 18);
    let new_records = resumed.portal.samples(&resumed.experiment_id);
    assert_eq!(new_records.len(), 9, "phase 2 publishes only its own samples");
    assert_eq!(new_records.first().unwrap().sample, 10, "numbering continues");
    // ...and the solver kept its momentum: the final best is at least as
    // good as before the crash.
    assert!(
        resumed.best_score <= best_before + 1e-9,
        "resumed best {} vs pre-crash {}",
        resumed.best_score,
        best_before
    );
    // Trajectory covers all 18 samples (9 restored + 9 new).
    assert_eq!(resumed.trajectory.len(), 18);
    assert_eq!(resumed.trajectory.last().unwrap().sample, 18);
}

#[test]
fn restoring_more_records_than_the_budget_terminates_immediately() {
    // A resumed host may run with a smaller budget than the recorded run;
    // the session must terminate (not underflow the remaining-budget math).
    let big = AppConfig { sample_budget: 9, ..config() };
    let recorded = ColorPickerApp::new(big).unwrap().run().unwrap();
    let records = recorded.portal.samples(&recorded.experiment_id);

    let small = AppConfig { sample_budget: 4, ..config() };
    let mut session = Experiment::new(small.clone()).unwrap();
    session.restore_from_records(&records);
    let mut lab = SimBackend::new(&small).unwrap();
    let outcome = session.run_on(&mut lab).unwrap();
    assert_eq!(outcome.termination, TerminationReason::BudgetExhausted);
    assert_eq!(outcome.samples_measured, 9, "restored history is kept, nothing new measured");
}

#[test]
fn restore_from_empty_records_is_a_noop() {
    let mut app = ColorPickerApp::new(config()).expect("builds");
    app.restore_from_records(&[]);
    assert!(app.history().is_empty());
    let outcome = app.run().expect("runs normally");
    assert_eq!(outcome.samples_measured, 18);
}

/// A decision procedure that is a *pure function of the history* — the
/// class of solver for which crash recovery is exact. Registered through
/// the open `SolverRegistry`, so this test also exercises the
/// custom-solver path end to end (config → registry → session).
#[derive(Debug, Clone, Copy)]
struct HistorySweepSolver {
    dims: usize,
}

impl sdl_lab::solvers::ColorSolver for HistorySweepSolver {
    fn name(&self) -> &'static str {
        "history-sweep"
    }

    fn propose(
        &mut self,
        _target: sdl_lab::color::Rgb8,
        history: &[sdl_lab::solvers::Observation],
        batch: usize,
        _rng: &mut sdl_lab::solvers::StdRng,
    ) -> Vec<Vec<f64>> {
        (0..batch)
            .map(|i| {
                let n = (history.len() + i) as f64;
                (0..self.dims).map(|d| (0.37 * (n + 1.0) + 0.13 * d as f64).fract()).collect()
            })
            .collect()
    }
}

fn register_sweep_solver() {
    sdl_lab::solvers::register_solver("history-sweep", |dims| {
        Box::new(HistorySweepSolver { dims })
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The exact restoration contract — the one `ReplayBackend` relies on:
    /// restoring the first `k` records of a recorded run and re-driving the
    /// remainder reproduces the uninterrupted outcome bit for bit, for any
    /// solver whose decisions are a pure function of the history. The cut
    /// lands on a batch boundary, as a crash between publish and plate swap
    /// does.
    #[test]
    fn restore_plus_replay_equals_uninterrupted(
        samples in 4u32..16,
        batch in 1u32..5,
        seed in 0u64..1_000,
        cut_batches in 0u32..8,
    ) {
        register_sweep_solver();
        let cfg = AppConfig {
            custom_solver: Some("history-sweep".into()),
            sample_budget: samples,
            batch,
            seed,
            publish_images: false,
            ..AppConfig::default()
        };
        let mut full_session = Experiment::new(cfg.clone()).unwrap();
        let mut lab = SimBackend::new(&cfg).unwrap();
        let full = full_session.run_on(&mut lab).unwrap();
        let records = full.portal.samples(&full.experiment_id);
        prop_assert_eq!(records.len() as u32, samples);

        let k = ((cut_batches * batch).min(samples.saturating_sub(1))) as usize;
        let k = k - k % batch as usize;

        let mut resumed = Experiment::new(cfg).unwrap();
        resumed.restore_from_records(&records[..k]);
        let mut replay = ReplayBackend::from_records(records[k..].to_vec());
        let outcome = resumed.run_on(&mut replay).unwrap();

        prop_assert_eq!(outcome.samples_measured, full.samples_measured);
        prop_assert_eq!(outcome.best_score.to_bits(), full.best_score.to_bits());
        prop_assert_eq!(&outcome.best_ratios, &full.best_ratios);
        prop_assert_eq!(outcome.trajectory.len(), full.trajectory.len());
        for (a, b) in full.trajectory.iter().zip(&outcome.trajectory) {
            prop_assert_eq!(a.sample, b.sample);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            prop_assert_eq!(a.best.to_bits(), b.best.to_bits());
        }
    }

    /// Stochastic solvers cannot reproduce the pre-crash proposal stream
    /// (their RNG state is not in the records), but restoration must keep
    /// the structural contract: numbering continues, the budget accounting
    /// is exact, and the restored history keeps the solver's momentum
    /// (best-so-far never regresses past the pre-crash best).
    #[test]
    fn restore_keeps_structure_for_stochastic_solvers(
        solver in prop_oneof![
            Just(SolverKind::Genetic),
            Just(SolverKind::Random),
            Just(SolverKind::Annealing),
        ],
        samples in 4u32..14,
        batch in 1u32..4,
        seed in 0u64..1_000,
        cut in 1u32..10,
    ) {
        let cut = cut.min(samples - 1);
        let cfg = AppConfig {
            solver,
            sample_budget: samples,
            batch,
            seed,
            publish_images: false,
            ..AppConfig::default()
        };
        let phase1 = ColorPickerApp::new(AppConfig { sample_budget: cut, ..cfg.clone() })
            .unwrap()
            .run()
            .unwrap();
        let records = phase1.portal.samples(&phase1.experiment_id);

        let mut app = ColorPickerApp::new(cfg).unwrap();
        app.restore_from_records(&records);
        prop_assert_eq!(app.history().len() as u32, cut);
        let resumed = app.run().unwrap();

        prop_assert_eq!(resumed.termination, TerminationReason::BudgetExhausted);
        prop_assert_eq!(resumed.samples_measured, samples);
        prop_assert_eq!(resumed.trajectory.len() as u32, samples);
        prop_assert!(resumed.best_score <= phase1.best_score + 1e-12);
        // Phase 2 publishes only its own samples, numbered after the cut.
        let new_records = resumed.portal.samples(&resumed.experiment_id);
        prop_assert_eq!(new_records.len() as u32, samples - cut);
        prop_assert_eq!(new_records.first().map(|r| r.sample), Some(cut + 1));
        // Best-so-far is monotone over the stitched trajectory.
        for w in resumed.trajectory.windows(2) {
            prop_assert!(w[1].best <= w[0].best + 1e-12);
        }
    }
}
